package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/spike"
)

// testGraph builds a small 4-neuron chain 0->1->2->3 plus a skip synapse
// 0->3 with known spike counts.
func testGraph() *SpikeGraph {
	return &SpikeGraph{
		Neurons: 4,
		Synapses: []Synapse{
			{Pre: 0, Post: 1, Weight: 1},
			{Pre: 1, Post: 2, Weight: 1},
			{Pre: 2, Post: 3, Weight: 1},
			{Pre: 0, Post: 3, Weight: 0.5},
		},
		Spikes: []spike.Train{
			{0, 10, 20}, // neuron 0: 3 spikes
			{5},         // neuron 1: 1 spike
			{},          // neuron 2: none
			{7, 8},      // neuron 3: 2 spikes
		},
		Groups: []Group{
			{Name: "in", Kind: "input", Start: 0, N: 1},
			{Name: "hidden", Kind: "excitatory", Start: 1, N: 2},
			{Name: "out", Kind: "readout", Start: 3, N: 1},
		},
		DurationMs: 1000,
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := testGraph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SpikeGraph)
	}{
		{"pre out of range", func(g *SpikeGraph) { g.Synapses[0].Pre = 99 }},
		{"post out of range", func(g *SpikeGraph) { g.Synapses[0].Post = -1 }},
		{"negative delay", func(g *SpikeGraph) { g.Synapses[0].DelayMs = -2 }},
		{"train count mismatch", func(g *SpikeGraph) { g.Spikes = g.Spikes[:2] }},
		{"unsorted train", func(g *SpikeGraph) { g.Spikes[0] = spike.Train{5, 1} }},
		{"group out of bounds", func(g *SpikeGraph) { g.Groups[0].N = 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph()
			tc.mutate(g)
			if err := g.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestSpikeCountsAndTraffic(t *testing.T) {
	g := testGraph()
	counts := g.SpikeCounts()
	if !reflect.DeepEqual(counts, []int64{3, 1, 0, 2}) {
		t.Fatalf("SpikeCounts = %v", counts)
	}
	if got := g.TotalSpikes(); got != 6 {
		t.Fatalf("TotalSpikes = %d, want 6", got)
	}
	// Traffic: syn 0->1 carries 3, 1->2 carries 1, 2->3 carries 0,
	// 0->3 carries 3. Total 7.
	if got := g.TotalSynapticTraffic(); got != 7 {
		t.Fatalf("TotalSynapticTraffic = %d, want 7", got)
	}
}

func TestDegrees(t *testing.T) {
	g := testGraph()
	if got := g.OutDegrees(); !reflect.DeepEqual(got, []int{2, 1, 1, 0}) {
		t.Fatalf("OutDegrees = %v", got)
	}
	if got := g.InDegrees(); !reflect.DeepEqual(got, []int{0, 1, 1, 2}) {
		t.Fatalf("InDegrees = %v", got)
	}
}

func TestGroupOf(t *testing.T) {
	g := testGraph()
	if grp := g.GroupOf(0); grp == nil || grp.Name != "in" {
		t.Fatalf("GroupOf(0) = %v", grp)
	}
	if grp := g.GroupOf(2); grp == nil || grp.Name != "hidden" {
		t.Fatalf("GroupOf(2) = %v", grp)
	}
	g2 := &SpikeGraph{Neurons: 1, Spikes: []spike.Train{{}}}
	if g2.GroupOf(0) != nil {
		t.Fatal("uncovered neuron should have nil group")
	}
}

func TestBuildCSR(t *testing.T) {
	g := testGraph()
	csr := g.BuildCSR()
	out0 := csr.Out(0)
	if len(out0) != 2 || out0[0].Post != 1 || out0[1].Post != 3 {
		t.Fatalf("Out(0) = %v", out0)
	}
	if len(csr.Out(3)) != 0 {
		t.Fatal("Out(3) should be empty")
	}
	// CSR must preserve the total synapse count.
	total := 0
	for i := 0; i < g.Neurons; i++ {
		total += len(csr.Out(i))
	}
	if total != len(g.Synapses) {
		t.Fatalf("CSR total %d != %d", total, len(g.Synapses))
	}
}

func TestCSRProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := &SpikeGraph{Neurons: n, Spikes: make([]spike.Train, n)}
		m := rng.Intn(100)
		for i := 0; i < m; i++ {
			g.Synapses = append(g.Synapses, Synapse{
				Pre:  int32(rng.Intn(n)),
				Post: int32(rng.Intn(n)),
			})
		}
		csr := g.BuildCSR()
		// Every synapse of pre i must appear in Out(i), and counts match.
		count := 0
		for i := 0; i < n; i++ {
			for _, s := range csr.Out(i) {
				if int(s.Pre) != i {
					return false
				}
				count++
			}
		}
		return count == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Neurons != g.Neurons || len(back.Synapses) != len(g.Synapses) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if !reflect.DeepEqual(back.Groups, g.Groups) {
		t.Fatalf("groups mismatch: %v vs %v", back.Groups, g.Groups)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"neurons":-3}`)); err == nil {
		t.Fatal("negative neuron count must be rejected")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}

func TestSummary(t *testing.T) {
	g := testGraph()
	st := g.Summary()
	if st.Neurons != 4 || st.Synapses != 4 || st.TotalSpikes != 6 {
		t.Fatalf("Summary = %+v", st)
	}
	// 6 spikes / 4 neurons / 1 s = 1.5 Hz.
	if st.MeanRateHz != 1.5 {
		t.Fatalf("MeanRateHz = %v, want 1.5", st.MeanRateHz)
	}
}

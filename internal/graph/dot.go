package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders the spike graph in Graphviz DOT format, with one cluster
// per population group and neurons labelled by index and spike count.
// assign, when non-nil, colors neurons by their crossbar. Intended for
// inspecting small networks; graphs beyond a few hundred neurons are better
// viewed through summary statistics.
func (g *SpikeGraph) WriteDOT(w io.Writer, assign []int) error {
	if assign != nil && len(assign) != g.Neurons {
		return fmt.Errorf("graph: assignment covers %d of %d neurons", len(assign), g.Neurons)
	}
	if _, err := fmt.Fprintln(w, "digraph snn {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=circle, fontsize=8];")

	// Color palette for crossbars (cycled).
	palette := []string{
		"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
		"#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
	}

	covered := make([]bool, g.Neurons)
	for gi, grp := range g.Groups {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", gi)
		fmt.Fprintf(w, "    label=%q;\n", fmt.Sprintf("%s (%s)", grp.Name, grp.Kind))
		for i := grp.Start; i < grp.Start+grp.N; i++ {
			writeNode(w, g, i, assign, palette)
			covered[i] = true
		}
		fmt.Fprintln(w, "  }")
	}
	for i := 0; i < g.Neurons; i++ {
		if !covered[i] {
			writeNode(w, g, i, assign, palette)
		}
	}
	for _, s := range g.Synapses {
		style := ""
		if assign != nil && assign[s.Pre] != assign[s.Post] {
			style = " [style=dashed, color=red]" // global synapse
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", s.Pre, s.Post, style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func writeNode(w io.Writer, g *SpikeGraph, i int, assign []int, palette []string) {
	label := fmt.Sprintf("%d\\n%d sp", i, len(g.Spikes[i]))
	if assign != nil {
		color := palette[assign[i]%len(palette)]
		fmt.Fprintf(w, "    n%d [label=%q, style=filled, fillcolor=%q];\n", i, label, color)
		return
	}
	fmt.Fprintf(w, "    n%d [label=%q];\n", i, label)
}

package graph

// Hypergraph is the multicast view of the synapse list: one hyperedge per
// neuron, spanning the neuron itself plus the post-synaptic endpoint of
// every out-synapse. A presynaptic spike is one multicast to the crossbars
// its hyperedge pins occupy — not len(fan-out) pairwise sends — which is
// exactly the word-level destination-mask packetization the NoC core uses.
// Cut metrics over this structure therefore count distinct destination
// crossbars (connectivity λ − 1), matching per-crossbar AER traffic.
type Hypergraph struct {
	// Start indexes Pins by hyperedge: edge e's pins are
	// Pins[Start[e]:Start[e+1]]. Edge e is source neuron e, so
	// len(Start) == Neurons+1 and every neuron owns exactly one edge
	// (possibly with no pins beyond itself).
	Start []int32
	// Pins lists pin neurons per edge: the first pin of edge e is e
	// itself, followed by the posts of its out-synapses in CSR order.
	// Multi-synapse targets and self-loops contribute one pin per
	// synapse, so pin multiplicity mirrors synapse multiplicity.
	Pins []int32
	// Weight[e] is the source neuron's spike count — the traffic
	// multiplier of the hyperedge (each spike pays the edge's
	// connectivity once).
	Weight []int64
}

// Edges returns the number of hyperedges (== neurons).
func (h *Hypergraph) Edges() int { return len(h.Start) - 1 }

// PinsOf returns edge e's pin list (source first, then posts).
func (h *Hypergraph) PinsOf(e int) []int32 {
	return h.Pins[h.Start[e]:h.Start[e+1]]
}

// Hypergraph returns the graph's hyperedge view, building it from the
// memoized CSR on first use and reusing it afterwards. Like CSR, the
// cache is safe for concurrent callers and assumes the graph is immutable
// once characterized.
func (g *SpikeGraph) Hypergraph() *Hypergraph {
	g.hgOnce.Do(func() { g.hgCache = g.BuildHypergraph() })
	return g.hgCache
}

// BuildHypergraph constructs a fresh hyperedge view of the graph. Most
// callers want the cached Hypergraph method instead.
func (g *SpikeGraph) BuildHypergraph() *Hypergraph {
	csr := g.CSR()
	n := g.Neurons
	h := &Hypergraph{
		Start:  make([]int32, n+1),
		Pins:   make([]int32, 0, n+len(csr.Synapses)),
		Weight: g.SpikeCounts(),
	}
	for i := 0; i < n; i++ {
		h.Pins = append(h.Pins, int32(i))
		for _, s := range csr.Out(i) {
			h.Pins = append(h.Pins, s.Post)
		}
		h.Start[i+1] = int32(len(h.Pins))
	}
	return h
}

package graph

import (
	"reflect"
	"testing"

	"repro/internal/spike"
)

func hgTestGraph() *SpikeGraph {
	// 4 neurons: 0→{1,2,2}, 1→1 (self-loop), 3 silent with no fan-out.
	return &SpikeGraph{
		Neurons: 4,
		Synapses: []Synapse{
			{Pre: 0, Post: 1, Weight: 1, DelayMs: 1},
			{Pre: 0, Post: 2, Weight: 1, DelayMs: 1},
			{Pre: 0, Post: 2, Weight: 1, DelayMs: 1},
			{Pre: 1, Post: 1, Weight: 1, DelayMs: 1},
		},
		Spikes: []spike.Train{
			{0, 5, 10},
			{1},
			{},
			{},
		},
		DurationMs: 100,
	}
}

func TestBuildHypergraph(t *testing.T) {
	g := hgTestGraph()
	h := g.Hypergraph()
	if h.Edges() != 4 {
		t.Fatalf("edges %d, want 4", h.Edges())
	}
	// Edge 0: source pin first, then posts in CSR order with synapse
	// multiplicity preserved.
	if got := h.PinsOf(0); !reflect.DeepEqual(got, []int32{0, 1, 2, 2}) {
		t.Fatalf("edge 0 pins %v", got)
	}
	// Edge 1 keeps its self-loop as a duplicate pin.
	if got := h.PinsOf(1); !reflect.DeepEqual(got, []int32{1, 1}) {
		t.Fatalf("edge 1 pins %v", got)
	}
	// A neuron with no fan-out still owns a singleton edge.
	if got := h.PinsOf(3); !reflect.DeepEqual(got, []int32{3}) {
		t.Fatalf("edge 3 pins %v", got)
	}
	if want := []int64{3, 1, 0, 0}; !reflect.DeepEqual(h.Weight, want) {
		t.Fatalf("weights %v, want %v", h.Weight, want)
	}
	// Memoized: same view on every call.
	if g.Hypergraph() != h {
		t.Fatal("Hypergraph is not memoized")
	}
	// Total pins = neurons + synapses.
	if got, want := len(h.Pins), g.Neurons+len(g.Synapses); got != want {
		t.Fatalf("pins %d, want %d", got, want)
	}
}

// Package apps builds the SNN applications of the paper's evaluation
// (Table I): hello world, image smoothing, handwritten digit recognition
// (Diehl & Cook-style), heartbeat estimation (liquid state machine), and
// the synthetic m×n feedforward topologies of §V-A. Each builder constructs
// the network with internal/snn, runs a characterization simulation, and
// exports the spike graph consumed by the partitioning framework.
//
// Data substitutions (documented in DESIGN.md): MNIST images are replaced
// by synthetic digit stroke bitmaps, and wearable ECG traces by a synthetic
// PQRST generator; both preserve the topology and the spike statistics the
// mapping problem depends on.
package apps

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
)

// Config holds the common application-construction parameters.
type Config struct {
	// Seed drives every stochastic choice (connectivity, input trains).
	Seed int64
	// DurationMs is the characterization run length (default 1000 ms).
	DurationMs int64
}

func (c Config) withDefaults() Config {
	if c.DurationMs == 0 {
		c.DurationMs = 1000
	}
	return c
}

// App is a built application: its name and the spike graph of the trained,
// characterized network.
type App struct {
	// Name is the short identifier used across benchmarks (e.g. "HW").
	Name string
	// Description states topology and coding scheme as in Table I.
	Description string
	// Graph is the spike graph handed to the partitioner.
	Graph *graph.SpikeGraph
}

// Validate checks the app invariants.
func (a *App) Validate() error {
	if a == nil || a.Graph == nil {
		return errors.New("apps: nil app or graph")
	}
	if a.Name == "" {
		return errors.New("apps: empty name")
	}
	return a.Graph.Validate()
}

// Builder constructs one application. All builders in this package are of
// this shape so experiment harnesses can sweep them.
type Builder func(cfg Config) (*App, error)

// longAliases maps the legacy long spellings onto the Table I short
// names, shared by ByName resolution and CanonicalSpec.
var longAliases = map[string]string{
	"hello_world":          "HW",
	"image_smoothing":      "IS",
	"digit_recognition":    "HD",
	"heartbeat_estimation": "HE",
}

// ByName returns the builder of a realistic application by its Table I
// short name (HW, IS, HD, HE) or legacy long alias.
func ByName(name string) (Builder, error) {
	if short, ok := longAliases[name]; ok {
		name = short
	}
	switch name {
	case "HW":
		return HelloWorld, nil
	case "IS":
		return ImageSmoothing, nil
	case "HD":
		return DigitRecognition, nil
	case "HE":
		return func(cfg Config) (*App, error) {
			r, err := Heartbeat(HeartbeatConfig{Config: cfg})
			if err != nil {
				return nil, err
			}
			return r.App, nil
		}, nil
	default:
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
}

// RealisticNames lists the Table I applications in paper order.
func RealisticNames() []string { return []string{"HW", "IS", "HD", "HE"} }

// ---------------------------------------------------------------------------
// Application registry

// Factory builds a named application from the common config plus the raw
// "k=v,..." parameter tail of a registry spec. Fixed applications receive
// an empty tail and should reject a non-empty one; parameterized families
// (the synthetic topologies, the internal/genapp generators) parse it.
type Factory func(cfg Config, params string) (*App, error)

var (
	regMu    sync.RWMutex
	regOrder []string
	regItems = map[string]Factory{}
)

// Register adds a named application family to the registry. Registration
// panics on duplicates — a wiring bug, caught at init.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("apps: registering empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regItems[name]; dup {
		panic(fmt.Sprintf("apps: duplicate registry entry %q", name))
	}
	regItems[name] = f
	regOrder = append(regOrder, name)
}

// Names lists the registered application families in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

func lookupFactory(name string) (Factory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := regItems[name]
	return f, ok
}

// Build resolves a registry spec and constructs the application. The spec
// is either an exact registry name ("HW", "gen:smallworld") or a registered
// prefix followed by a colon-separated parameter tail
// ("synth:layers=2,width=200", "gen:smallworld:n=512,seed=7"); parameters
// in the tail override the corresponding cfg fields. Legacy long names
// accepted by ByName keep working.
func Build(name string, cfg Config) (*App, error) {
	if f, ok := lookupFactory(name); ok {
		return f(cfg, "")
	}
	// Longest registered prefix wins: strip "k=v" tails at the last colon
	// until a registered family matches.
	for base := name; ; {
		i := strings.LastIndex(base, ":")
		if i < 0 {
			break
		}
		base = base[:i]
		if f, ok := lookupFactory(base); ok {
			return f(cfg, name[i+1:])
		}
	}
	if b, err := ByName(name); err == nil {
		return b(cfg)
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("apps: unknown application %q (known: %v)", name, known)
}

// CanonicalSpec normalizes an application spec textually, without
// building it: legacy long aliases collapse onto their registry short
// names and "k=v" parameter tails are re-rendered in sorted key order,
// so the spellings Build treats as the same application share one
// canonical string. Content-addressed consumers (the mapping service's
// result cache and session pool) key on this form so reordered
// parameters or aliased names cannot duplicate cached work. Specs that
// omit a family default still differ from ones spelling it out —
// that only costs cache dedup, never correctness. Unknown specs pass
// through unchanged (Build rejects them later).
func CanonicalSpec(spec string) string {
	if short, ok := longAliases[spec]; ok {
		return short
	}
	if _, ok := lookupFactory(spec); ok {
		return spec
	}
	// Mirror Build's resolution: longest registered prefix, then the
	// parameter tail.
	for base := spec; ; {
		i := strings.LastIndex(base, ":")
		if i < 0 {
			return spec
		}
		base = base[:i]
		if _, ok := lookupFactory(base); ok {
			kv, err := ParseParams(spec[len(base)+1:])
			if err != nil {
				return spec // malformed tails surface via Build's error
			}
			if len(kv) == 0 {
				return base // "synth:" builds exactly like "synth"
			}
			keys := make([]string, 0, len(kv))
			for k := range kv {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for j, k := range keys {
				parts[j] = k + "=" + kv[k]
			}
			return base + ":" + strings.Join(parts, ",")
		}
	}
}

// ValidateSpec checks a registry spec textually, without building the
// application: the spec must resolve to a registered family (exact name,
// legacy alias, or registered prefix) and any parameter tail must parse.
// It is the cheap submit-time check a job API runs so an unknown
// application rejects with a 400 instead of surfacing later as a failed
// job; parameter *values* are still validated by the family's builder.
func ValidateSpec(spec string) error {
	if _, ok := longAliases[spec]; ok {
		return nil
	}
	if _, ok := lookupFactory(spec); ok {
		return nil
	}
	for base := spec; ; {
		i := strings.LastIndex(base, ":")
		if i < 0 {
			if _, err := ByName(spec); err == nil {
				return nil
			}
			known := Names()
			sort.Strings(known)
			return fmt.Errorf("apps: unknown application %q (known: %v)", spec, known)
		}
		base = base[:i]
		if _, ok := lookupFactory(base); ok {
			if _, err := ParseParams(spec[len(base)+1:]); err != nil {
				return err
			}
			return nil
		}
	}
}

// ParseParams splits a "k=v,k=v" parameter tail into a key→value map,
// rejecting malformed entries and duplicate keys. An empty tail yields an
// empty map.
func ParseParams(params string) (map[string]string, error) {
	out := map[string]string{}
	if params == "" {
		return out, nil
	}
	for _, kv := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("apps: malformed parameter %q (want key=value)", kv)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("apps: duplicate parameter %q", k)
		}
		out[k] = v
	}
	return out, nil
}

// fixed adapts a Builder to a Factory that rejects parameters.
func fixed(name string, b Builder) Factory {
	return func(cfg Config, params string) (*App, error) {
		if params != "" {
			return nil, fmt.Errorf("apps: application %q takes no parameters (got %q)", name, params)
		}
		return b(cfg)
	}
}

func init() {
	// The Table I applications under their short names, plus the §V-A
	// synthetic feedforward family with an explicit layers/width tail.
	for _, name := range RealisticNames() {
		b, err := ByName(name)
		if err != nil {
			panic(err)
		}
		Register(name, fixed(name, b))
	}
	Register("synth", func(cfg Config, params string) (*App, error) {
		kv, err := ParseParams(params)
		if err != nil {
			return nil, err
		}
		layers, width := 2, 200
		for k, v := range kv {
			var dst *int
			switch k {
			case "layers":
				dst = &layers
			case "width":
				dst = &width
			default:
				return nil, fmt.Errorf("apps: synth: unknown parameter %q (layers, width)", k)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("apps: synth: parameter %s=%q: %w", k, v, err)
			}
			*dst = n
		}
		return Synthetic(cfg, layers, width)
	})
}

// Package apps builds the SNN applications of the paper's evaluation
// (Table I): hello world, image smoothing, handwritten digit recognition
// (Diehl & Cook-style), heartbeat estimation (liquid state machine), and
// the synthetic m×n feedforward topologies of §V-A. Each builder constructs
// the network with internal/snn, runs a characterization simulation, and
// exports the spike graph consumed by the partitioning framework.
//
// Data substitutions (documented in DESIGN.md): MNIST images are replaced
// by synthetic digit stroke bitmaps, and wearable ECG traces by a synthetic
// PQRST generator; both preserve the topology and the spike statistics the
// mapping problem depends on.
package apps

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Config holds the common application-construction parameters.
type Config struct {
	// Seed drives every stochastic choice (connectivity, input trains).
	Seed int64
	// DurationMs is the characterization run length (default 1000 ms).
	DurationMs int64
}

func (c Config) withDefaults() Config {
	if c.DurationMs == 0 {
		c.DurationMs = 1000
	}
	return c
}

// App is a built application: its name and the spike graph of the trained,
// characterized network.
type App struct {
	// Name is the short identifier used across benchmarks (e.g. "HW").
	Name string
	// Description states topology and coding scheme as in Table I.
	Description string
	// Graph is the spike graph handed to the partitioner.
	Graph *graph.SpikeGraph
}

// Validate checks the app invariants.
func (a *App) Validate() error {
	if a == nil || a.Graph == nil {
		return errors.New("apps: nil app or graph")
	}
	if a.Name == "" {
		return errors.New("apps: empty name")
	}
	return a.Graph.Validate()
}

// Builder constructs one application. All builders in this package are of
// this shape so experiment harnesses can sweep them.
type Builder func(cfg Config) (*App, error)

// ByName returns the builder of a realistic application by its Table I
// short name (HW, IS, HD, HE).
func ByName(name string) (Builder, error) {
	switch name {
	case "HW", "hello_world":
		return HelloWorld, nil
	case "IS", "image_smoothing":
		return ImageSmoothing, nil
	case "HD", "digit_recognition":
		return DigitRecognition, nil
	case "HE", "heartbeat_estimation":
		return func(cfg Config) (*App, error) {
			r, err := Heartbeat(HeartbeatConfig{Config: cfg})
			if err != nil {
				return nil, err
			}
			return r.App, nil
		}, nil
	default:
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
}

// RealisticNames lists the Table I applications in paper order.
func RealisticNames() []string { return []string{"HW", "IS", "HD", "HE"} }

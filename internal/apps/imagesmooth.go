package apps

import (
	"math"
	"math/rand"

	"repro/internal/snn"
	"repro/internal/spike"
)

// imageSide is the edge length of the image smoothing grids: 32×32 = 1024
// neurons per layer, matching Table I's feedforward (1024, 1024).
const imageSide = 32

// SyntheticImage generates a deterministic-plus-noise grayscale test image
// in [0,1]: a diagonal luminance gradient with two bright Gaussian blobs —
// enough spatial structure for a smoothing kernel to act on. It substitutes
// for the camera input of the CARLsim image smoothing tutorial.
func SyntheticImage(rng *rand.Rand, side int) []float64 {
	img := make([]float64, side*side)
	blob := func(x, y, cx, cy, sigma float64) float64 {
		d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
		return math.Exp(-d2 / (2 * sigma * sigma))
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			fx, fy := float64(x), float64(y)
			v := 0.25 * (fx + fy) / float64(2*side-2) // gradient
			v += 0.7 * blob(fx, fy, float64(side)*0.3, float64(side)*0.35, float64(side)*0.12)
			v += 0.5 * blob(fx, fy, float64(side)*0.72, float64(side)*0.65, float64(side)*0.10)
			v += 0.05 * rng.Float64() // sensor noise
			if v > 1 {
				v = 1
			}
			img[y*side+x] = v
		}
	}
	return img
}

// GaussianKernel returns a normalized (sum = 1) square Gaussian smoothing
// kernel of the given radius and sigma.
func GaussianKernel(radius int, sigma float64) [][]float64 {
	size := 2*radius + 1
	k := make([][]float64, size)
	var sum float64
	for dy := -radius; dy <= radius; dy++ {
		row := make([]float64, size)
		for dx := -radius; dx <= radius; dx++ {
			v := math.Exp(-float64(dx*dx+dy*dy) / (2 * sigma * sigma))
			row[dx+radius] = v
			sum += v
		}
		k[dy+radius] = row
	}
	for _, row := range k {
		for i := range row {
			row[i] /= sum
		}
	}
	return k
}

// ImageSmoothing builds the CARLsim-native image smoothing application of
// Table I: a feedforward (1024, 1024) network where a 32×32 rate-coded
// input layer drives a 32×32 output layer through a Gaussian convolution
// kernel, so the output spike rates are a smoothed version of the input
// image.
func ImageSmoothing(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := snn.New(rng.Int63())

	n := imageSide * imageSide
	in := net.CreateSpikeSource("input", n)
	out := net.CreateGroup("output", n, snn.Excitatory)
	kernel := GaussianKernel(1, 0.85)
	// Scale chosen so bright regions (≈60 Hz local rate) drive outputs
	// above threshold while dark regions stay quiet.
	if _, err := net.ConnectKernel2D(in, out, imageSide, imageSide, kernel, 18.0, 1); err != nil {
		return nil, err
	}

	sim, err := snn.NewSim(net)
	if err != nil {
		return nil, err
	}
	img := SyntheticImage(rng, imageSide)
	rates := make([]float64, n)
	for i, v := range img {
		rates[i] = v * 60 // rate coding: pixel intensity → up to 60 Hz
	}
	if err := sim.SetSpikeTrains(in, spike.PoissonRates(rng, rates, cfg.DurationMs)); err != nil {
		return nil, err
	}
	if err := sim.Run(cfg.DurationMs); err != nil {
		return nil, err
	}
	g, err := sim.Graph()
	if err != nil {
		return nil, err
	}
	return &App{
		Name:        "IS",
		Description: "image smoothing: feedforward (1024, 1024), Gaussian kernel, rate coding (CARLsim native)",
		Graph:       g,
	}, nil
}

package apps

import (
	"math/rand"

	"repro/internal/snn"
	"repro/internal/spike"
)

// HelloWorld builds the CARLsim-native "hello world" application of
// Table I: a feedforward (117, 9) network — a 13×9 input grid projecting
// onto 9 output neurons — driven by Poisson input, rate coded.
func HelloWorld(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := snn.New(rng.Int63())

	in := net.CreateSpikeSource("input", 117) // 13×9 grid
	out := net.CreateGroup("output", 9, snn.Excitatory)
	// Full projection with mild weight spread, as in the CARLsim
	// tutorial's random connectivity.
	if _, err := net.ConnectRandom(in, out, 1.0, 0.2, 0.4, 1); err != nil {
		return nil, err
	}

	sim, err := snn.NewSim(net)
	if err != nil {
		return nil, err
	}
	// Poisson drive between 10 and 50 Hz per input neuron.
	rates := make([]float64, 117)
	for i := range rates {
		rates[i] = 10 + rng.Float64()*40
	}
	if err := sim.SetSpikeTrains(in, spike.PoissonRates(rng, rates, cfg.DurationMs)); err != nil {
		return nil, err
	}
	if err := sim.Run(cfg.DurationMs); err != nil {
		return nil, err
	}
	g, err := sim.Graph()
	if err != nil {
		return nil, err
	}
	return &App{
		Name:        "HW",
		Description: "hello world: feedforward (117, 9), Poisson input, rate coding (CARLsim native)",
		Graph:       g,
	}, nil
}

package apps

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess races registrations against the lookup
// paths a long-lived server exercises per request — Names, Build with
// exact names, parameter-tail prefix resolution and unknown-name misses.
// The -race CI job turns any unsynchronized registry access into a
// failure. Registered names are unique to this test binary, so no other
// apps test observes them.
func TestRegistryConcurrentAccess(t *testing.T) {
	const writers, readers, iters = 2, 8, 100

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("race-test-w%d-%d", w, i)
				Register(name, func(cfg Config, params string) (*App, error) {
					return nil, fmt.Errorf("apps: %s is a registry race fixture", name)
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				if len(Names()) == 0 {
					t.Error("Names came back empty")
					return
				}
				// Exact fixture hit (whichever are registered yet), tail
				// resolution miss, and unknown-name miss.
				if _, err := Build("race-test-w0-0:k=v", Config{}); err == nil {
					t.Error("parameter tail accepted by a fixture factory without one")
					return
				}
				if _, err := Build("race-test-no-such-app", Config{}); err == nil {
					t.Error("unknown app accepted")
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
}

package apps

import (
	"math"
	"math/rand"

	"repro/internal/neuron"
	"repro/internal/snn"
	"repro/internal/spike"
)

// digitSide is the edge of the digit bitmaps (28×28, MNIST-shaped).
const digitSide = 28

// digitStrokes defines each digit 0–9 as straight strokes in a unit square
// ((0,0) top-left). The bitmaps substitute for MNIST, which is unavailable
// offline; the mapping experiments depend only on the input topology and
// spike statistics, which these stroke images preserve.
var digitStrokes = map[int][][4]float64{
	0: {{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.7, 0.8}, {0.7, 0.8, 0.3, 0.8}, {0.3, 0.8, 0.3, 0.2}},
	1: {{0.5, 0.15, 0.5, 0.85}, {0.35, 0.3, 0.5, 0.15}},
	2: {{0.3, 0.25, 0.7, 0.25}, {0.7, 0.25, 0.7, 0.5}, {0.7, 0.5, 0.3, 0.8}, {0.3, 0.8, 0.7, 0.8}},
	3: {{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.7, 0.8}, {0.3, 0.5, 0.7, 0.5}, {0.3, 0.8, 0.7, 0.8}},
	4: {{0.35, 0.2, 0.35, 0.5}, {0.35, 0.5, 0.7, 0.5}, {0.65, 0.2, 0.65, 0.85}},
	5: {{0.7, 0.2, 0.3, 0.2}, {0.3, 0.2, 0.3, 0.5}, {0.3, 0.5, 0.7, 0.5}, {0.7, 0.5, 0.7, 0.8}, {0.7, 0.8, 0.3, 0.8}},
	6: {{0.65, 0.2, 0.35, 0.35}, {0.35, 0.35, 0.35, 0.8}, {0.35, 0.8, 0.7, 0.8}, {0.7, 0.8, 0.7, 0.55}, {0.7, 0.55, 0.35, 0.55}},
	7: {{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.45, 0.85}},
	8: {{0.35, 0.2, 0.65, 0.2}, {0.65, 0.2, 0.65, 0.8}, {0.65, 0.8, 0.35, 0.8}, {0.35, 0.8, 0.35, 0.2}, {0.35, 0.5, 0.65, 0.5}},
	9: {{0.65, 0.5, 0.35, 0.5}, {0.35, 0.5, 0.35, 0.25}, {0.35, 0.25, 0.65, 0.25}, {0.65, 0.25, 0.65, 0.8}},
}

// SyntheticDigit rasterizes a digit (0–9) into a 28×28 grayscale bitmap in
// [0,1], with stroke thickness ≈2 px and a small random offset. It panics
// on digits outside 0–9.
func SyntheticDigit(rng *rand.Rand, digit int) []float64 {
	strokes, ok := digitStrokes[digit]
	if !ok {
		panic("apps: digit outside 0-9")
	}
	img := make([]float64, digitSide*digitSide)
	ox := (rng.Float64() - 0.5) * 0.08
	oy := (rng.Float64() - 0.5) * 0.08
	const thickness = 1.4 // pixels
	for y := 0; y < digitSide; y++ {
		for x := 0; x < digitSide; x++ {
			px := (float64(x) + 0.5) / digitSide
			py := (float64(y) + 0.5) / digitSide
			for _, s := range strokes {
				d := pointSegmentDist(px-ox, py-oy, s[0], s[1], s[2], s[3]) * digitSide
				if d < thickness {
					v := 1 - d/thickness
					if v > img[y*digitSide+x] {
						img[y*digitSide+x] = v
					}
				}
			}
		}
	}
	return img
}

// pointSegmentDist returns the distance from point (px,py) to segment
// (x1,y1)-(x2,y2) in unit coordinates.
func pointSegmentDist(px, py, x1, y1, x2, y2 float64) float64 {
	dx, dy := x2-x1, y2-y1
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((px-x1)*dx + (py-y1)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	cx, cy := x1+t*dx, y1+t*dy
	return math.Hypot(px-cx, py-cy)
}

// DigitRecognition builds the handwritten digit application of Table I
// (Diehl & Cook 2015): an unsupervised recurrent (250, 250) network. The
// 28×28 Poisson input layer projects fully onto 250 excitatory neurons with
// STDP; each excitatory neuron drives one inhibitory partner, and every
// inhibitory neuron suppresses all excitatory neurons except its partner
// (winner-take-all lateral inhibition). The characterization run presents a
// sequence of synthetic digits.
func DigitRecognition(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := snn.New(rng.Int63())

	const nExc = 250
	in := net.CreateSpikeSource("input", digitSide*digitSide)
	exc := net.CreateGroup("excitatory", nExc, snn.Excitatory)
	inh := net.CreateGroup("inhibitory", nExc, snn.Inhibitory)

	// Input -> excitatory: full projection with random initial weights
	// and pair-based STDP (the unsupervised learning of Diehl & Cook).
	// Weights are scaled so a presented digit (≈50 lit pixels at ≈30 Hz
	// effective rate) drives excitatory neurons past threshold.
	inToExc, err := net.ConnectRandom(in, exc, 1.0, 0.2, 0.8, 1)
	if err != nil {
		return nil, err
	}
	inToExc.Plastic = true
	inToExc.STDP = neuron.DefaultSTDP()

	// Excitatory -> inhibitory one-to-one, strong.
	if _, err := net.ConnectOneToOne(exc, inh, 12.0, 1); err != nil {
		return nil, err
	}

	// Inhibitory -> excitatory lateral inhibition: every inhibitory
	// neuron suppresses all excitatory neurons except its partner.
	edges := make([]snn.Edge, 0, nExc*(nExc-1))
	for i := 0; i < nExc; i++ {
		for j := 0; j < nExc; j++ {
			if i == j {
				continue
			}
			edges = append(edges, snn.Edge{SrcLocal: int32(i), DstLocal: int32(j), Weight: -1.0, DelayMs: 1})
		}
	}
	if _, err := net.ConnectCustom(inh, exc, edges); err != nil {
		return nil, err
	}

	sim, err := snn.NewSim(net)
	if err != nil {
		return nil, err
	}
	if err := sim.SetSpikeTrains(in, digitPresentations(rng, cfg.DurationMs)); err != nil {
		return nil, err
	}
	if err := sim.Run(cfg.DurationMs); err != nil {
		return nil, err
	}
	g, err := sim.Graph()
	if err != nil {
		return nil, err
	}
	return &App{
		Name:        "HD",
		Description: "handwritten digit: unsupervised recurrent (250, 250) with STDP and lateral inhibition (Diehl & Cook), rate coding",
		Graph:       g,
	}, nil
}

// digitPresentations builds input spike trains that present one random
// digit every presentationMs window (250 ms, as in Diehl & Cook's 350 ms
// with rests, compressed): pixel intensity maps to a Poisson rate of up to
// 55 Hz during the digit's window.
func digitPresentations(rng *rand.Rand, durationMs int64) []spike.Train {
	const presentationMs = 250
	n := digitSide * digitSide
	trains := make([]spike.Train, n)
	for start := int64(0); start < durationMs; start += presentationMs {
		img := SyntheticDigit(rng, rng.Intn(10))
		end := start + presentationMs
		if end > durationMs {
			end = durationMs
		}
		for px, v := range img {
			if v <= 0 {
				continue
			}
			window := spike.Poisson(rng, v*55, end-start)
			for _, t := range window {
				trains[px] = append(trains[px], t+start)
			}
		}
	}
	return trains
}

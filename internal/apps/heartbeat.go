package apps

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/snn"
	"repro/internal/spike"
)

// HeartbeatConfig extends Config with the physiological parameters of the
// synthetic ECG.
type HeartbeatConfig struct {
	Config
	// BPM is the true heart rate of the synthetic ECG (default 72).
	BPM float64
	// NoiseAmp is the additive measurement noise amplitude relative to
	// the R peak (default 0.03).
	NoiseAmp float64
	// Delta is the level-crossing encoder step (default 0.1 of the R
	// peak amplitude).
	Delta float64
}

// HeartbeatResult bundles the built application with the ground truth and
// encoder outputs needed by the accuracy experiment (§V-B: "20% reduction
// of ISI distortion improves estimation accuracy by over 5%").
type HeartbeatResult struct {
	App *App
	// TrueBPM is the heart rate of the generated ECG.
	TrueBPM float64
	// Up and Down are the level-crossing encoder spike channels.
	Up, Down spike.Train
	// LiquidSpikes are the spike trains of the 64 liquid neurons.
	LiquidSpikes []spike.Train
	// ReadoutSpikes are the spike trains of the 16 readout neurons.
	ReadoutSpikes []spike.Train
	// ReadoutStart is the global index of the first readout neuron in
	// the app graph.
	ReadoutStart int
	// LiquidStart is the global index of the first liquid neuron.
	LiquidStart int
}

// SyntheticECG generates an ECG-like waveform sampled at 1 kHz (one sample
// per millisecond): a per-beat PQRST complex modelled as a sum of Gaussian
// bumps, with baseline wander and additive noise. Amplitude is normalized
// to the R peak (≈1.0). It substitutes for the proprietary wearable traces
// of Das et al. 2017.
func SyntheticECG(rng *rand.Rand, bpm float64, durationMs int64, noiseAmp float64) []float64 {
	if bpm <= 0 || durationMs <= 0 {
		return nil
	}
	period := 60000.0 / bpm // ms per beat
	// Gaussian components: amplitude, center offset (fraction of beat
	// before/after R), width in ms.
	type bump struct{ amp, offsetMs, sigmaMs float64 }
	bumps := []bump{
		{0.15, -180, 25}, // P wave
		{-0.10, -35, 10}, // Q
		{1.00, 0, 12},    // R
		{-0.22, 35, 10},  // S
		{0.30, 220, 55},  // T wave
	}
	out := make([]float64, durationMs)
	for i := int64(0); i < durationMs; i++ {
		t := float64(i)
		// Beat index of the nearest R peak.
		beat := math.Round(t / period)
		v := 0.0
		// Consider the neighboring beats too (T of previous, P of next).
		for b := beat - 1; b <= beat+1; b++ {
			center := b * period
			for _, u := range bumps {
				d := t - (center + u.offsetMs)
				v += u.amp * math.Exp(-d*d/(2*u.sigmaMs*u.sigmaMs))
			}
		}
		// Slow baseline wander plus noise.
		v += 0.05 * math.Sin(2*math.Pi*t/4800)
		v += noiseAmp * (rng.Float64()*2 - 1)
		out[i] = v
	}
	return out
}

// LevelCrossing implements the paper's spike generator flowchart (Fig. 3,
// left): two thresholds Uthr and Lthr track the signal; whenever the signal
// exceeds Uthr an UP spike is emitted, whenever it falls below Lthr a DOWN
// spike is emitted. After a spike both thresholds are re-centred delta away
// from the current sample (the send-on-delta variant of level crossing),
// which keeps sub-delta measurement noise from chattering between the two
// channels. At most one spike per channel is emitted per 1 ms sample.
func LevelCrossing(signal []float64, delta float64) (up, down spike.Train) {
	if len(signal) == 0 || delta <= 0 {
		return nil, nil
	}
	uthr := signal[0] + delta
	lthr := signal[0] - delta
	for i, v := range signal {
		switch {
		case v > uthr:
			up = append(up, int64(i))
			uthr = v + delta
			lthr = v - delta
		case v < lthr:
			down = append(down, int64(i))
			uthr = v + delta
			lthr = v - delta
		}
	}
	return up, down
}

// Heartbeat builds the heartbeat estimation application of Table I (Das et
// al. 2017): an unsupervised liquid state machine (64, 16) with temporal
// coding. A synthetic ECG is converted to UP/DOWN spike channels by the
// level-crossing encoder; the two channels drive a 64-neuron liquid (80%
// excitatory, 20% inhibitory, random recurrent connectivity), read out by
// 16 neurons.
func Heartbeat(cfg HeartbeatConfig) (*HeartbeatResult, error) {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Config.DurationMs == 1000 {
		// Heart rate estimation needs several beats; default to 10 s.
		cfg.Config.DurationMs = 10000
	}
	if cfg.BPM == 0 {
		cfg.BPM = 72
	}
	if cfg.NoiseAmp == 0 {
		cfg.NoiseAmp = 0.03
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.1
	}
	if cfg.BPM < 0 {
		return nil, errors.New("apps: negative BPM")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	ecg := SyntheticECG(rng, cfg.BPM, cfg.DurationMs, cfg.NoiseAmp)
	up, down := LevelCrossing(ecg, cfg.Delta)

	net := snn.New(rng.Int63())
	in := net.CreateSpikeSource("input", 2) // UP and DOWN channels
	const nLiquid = 64
	nInh := nLiquid / 5 // 20% inhibitory
	nExc := nLiquid - nInh
	liquidExc := net.CreateGroup("liquid_exc", nExc, snn.Excitatory)
	liquidInh := net.CreateGroup("liquid_inh", nInh, snn.Inhibitory)
	readout := net.CreateGroup("readout", 16, snn.Excitatory)

	// Input fans into a random 40% of the excitatory liquid, strongly.
	if _, err := net.ConnectRandom(in, liquidExc, 0.4, 8, 14, 1); err != nil {
		return nil, err
	}
	if _, err := net.ConnectRandom(in, liquidInh, 0.2, 6, 10, 1); err != nil {
		return nil, err
	}
	// Recurrent liquid with distance-free random connectivity.
	if _, err := net.ConnectRandom(liquidExc, liquidExc, 0.12, 1.5, 3.0, 2); err != nil {
		return nil, err
	}
	if _, err := net.ConnectRandom(liquidExc, liquidInh, 0.2, 2.0, 4.0, 1); err != nil {
		return nil, err
	}
	if _, err := net.ConnectRandom(liquidInh, liquidExc, 0.25, -6.0, -3.0, 1); err != nil {
		return nil, err
	}
	// Liquid -> readout, full.
	if _, err := net.ConnectFull(liquidExc, readout, 0.8, 1); err != nil {
		return nil, err
	}
	if _, err := net.ConnectFull(liquidInh, readout, -0.8, 1); err != nil {
		return nil, err
	}

	sim, err := snn.NewSim(net)
	if err != nil {
		return nil, err
	}
	if err := sim.SetSpikeTrains(in, []spike.Train{up, down}); err != nil {
		return nil, err
	}
	if err := sim.Run(cfg.DurationMs); err != nil {
		return nil, err
	}
	g, err := sim.Graph()
	if err != nil {
		return nil, err
	}

	liquidSpikes := make([]spike.Train, 0, nLiquid)
	excSpikes, err := sim.GroupSpikes(liquidExc)
	if err != nil {
		return nil, err
	}
	inhSpikes, err := sim.GroupSpikes(liquidInh)
	if err != nil {
		return nil, err
	}
	liquidSpikes = append(liquidSpikes, excSpikes...)
	liquidSpikes = append(liquidSpikes, inhSpikes...)
	roSpikes, err := sim.GroupSpikes(readout)
	if err != nil {
		return nil, err
	}
	liquidStart, err := sim.GlobalID(liquidExc, 0)
	if err != nil {
		return nil, err
	}
	readoutStart, err := sim.GlobalID(readout, 0)
	if err != nil {
		return nil, err
	}

	return &HeartbeatResult{
		App: &App{
			Name:        "HE",
			Description: "heartbeat estimation: unsupervised LSM (64, 16), level-crossing temporal coding (Das et al.)",
			Graph:       g,
		},
		TrueBPM:      cfg.BPM,
		Up:           up,
		Down:         down,
		LiquidSpikes: liquidSpikes,
		ReadoutSpikes: func() []spike.Train {
			out := make([]spike.Train, len(roSpikes))
			for i, t := range roSpikes {
				out[i] = t.Clone()
			}
			return out
		}(),
		ReadoutStart: readoutStart,
		LiquidStart:  liquidStart,
	}, nil
}

// EstimateBPM estimates heart rate from a population spike train by
// clustering spikes into beat bursts: spikes closer than minGapMs belong to
// the same burst, and only bursts of at least minBurstSpikes spikes count
// as beats (the steep QRS upstroke crosses many encoder levels in a few
// milliseconds, while P/T waves and noise cross only one or two). This is
// the probabilistic-readout substitute used by the accuracy experiment.
func EstimateBPM(population spike.Train, durationMs, minGapMs int64, minBurstSpikes int) float64 {
	if len(population) == 0 || durationMs <= 0 {
		return 0
	}
	if minGapMs <= 0 {
		minGapMs = 200
	}
	if minBurstSpikes < 1 {
		minBurstSpikes = 1
	}
	bursts := 0
	size := 1
	flush := func() {
		if size >= minBurstSpikes {
			bursts++
		}
	}
	for i := 1; i < len(population); i++ {
		if population[i]-population[i-1] > minGapMs {
			flush()
			size = 0
		}
		size++
	}
	flush()
	return float64(bursts) * 60000.0 / float64(durationMs)
}

// BurstStarts clusters a population spike train into bursts (spikes closer
// than minGapMs belong to one burst, bursts below minBurstSpikes spikes are
// dropped) and returns the start time of each retained burst. Burst starts
// mark the detected heartbeats.
func BurstStarts(population spike.Train, minGapMs int64, minBurstSpikes int) []int64 {
	if len(population) == 0 {
		return nil
	}
	if minGapMs <= 0 {
		minGapMs = 200
	}
	if minBurstSpikes < 1 {
		minBurstSpikes = 1
	}
	var starts []int64
	burstStart := population[0]
	size := 1
	flush := func() {
		if size >= minBurstSpikes {
			starts = append(starts, burstStart)
		}
	}
	for i := 1; i < len(population); i++ {
		if population[i]-population[i-1] > minGapMs {
			flush()
			burstStart = population[i]
			size = 0
		}
		size++
	}
	flush()
	return starts
}

// EstimateBPMMedian estimates heart rate as 60000 divided by the median
// interval between consecutive burst starts (same clustering parameters as
// EstimateBPM). The median is robust to a minority of bursts being split or
// merged by interconnect jitter.
func EstimateBPMMedian(population spike.Train, minGapMs int64, minBurstSpikes int) float64 {
	starts := BurstStarts(population, minGapMs, minBurstSpikes)
	if len(starts) < 2 {
		return 0
	}
	intervals := make([]int64, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		intervals[i-1] = starts[i] - starts[i-1]
	}
	sort.Slice(intervals, func(i, j int) bool { return intervals[i] < intervals[j] })
	med := intervals[len(intervals)/2]
	if len(intervals)%2 == 0 {
		med = (med + intervals[len(intervals)/2-1]) / 2
	}
	if med <= 0 {
		return 0
	}
	return 60000.0 / float64(med)
}

// BeatIntervalError compares per-beat intervals between a reference beat
// sequence and a distorted one (index-matched up to the shorter length),
// returning the mean absolute relative error. Instantaneous heart-rate and
// heart-rate-variability estimation depend on individual beat intervals, so
// this is the accuracy measure most sensitive to interconnect ISI
// distortion.
func BeatIntervalError(reference, distorted []int64) float64 {
	n := len(reference) - 1
	if m := len(distorted) - 1; m < n {
		n = m
	}
	if n <= 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		ref := float64(reference[i+1] - reference[i])
		dis := float64(distorted[i+1] - distorted[i])
		if ref > 0 {
			d := (dis - ref) / ref
			if d < 0 {
				d = -d
			}
			total += d
		}
	}
	return total / float64(n)
}

// MergeAll merges a set of spike trains into one population train.
func MergeAll(trains []spike.Train) spike.Train {
	var out spike.Train
	for _, t := range trains {
		out = spike.Merge(out, t)
	}
	return out
}

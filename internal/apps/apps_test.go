package apps

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/spike"
)

func TestSyntheticSynapseCountsMatchPaper(t *testing.T) {
	// Paper §V-A: 1x200 has 2000 synapses, 4x200 has 122000 ("dense").
	cases := []struct {
		layers, width, want int
	}{
		{1, 200, 2000},
		{1, 600, 6000},
		{3, 200, 82000},
		{4, 200, 122000},
	}
	for _, tc := range cases {
		app, err := Synthetic(Config{Seed: 1, DurationMs: 200}, tc.layers, tc.width)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(app.Graph.Synapses); got != tc.want {
			t.Fatalf("%dx%d synapses = %d, want %d", tc.layers, tc.width, got, tc.want)
		}
		if app.Graph.Neurons != 10+tc.layers*tc.width {
			t.Fatalf("%dx%d neurons = %d", tc.layers, tc.width, app.Graph.Neurons)
		}
	}
}

func TestSyntheticAllLayersActive(t *testing.T) {
	app, err := Synthetic(Config{Seed: 2, DurationMs: 1000}, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	g := app.Graph
	for _, grp := range g.Groups {
		spikes := int64(0)
		for i := grp.Start; i < grp.Start+grp.N; i++ {
			spikes += int64(len(g.Spikes[i]))
		}
		if spikes == 0 {
			t.Fatalf("group %s silent", grp.Name)
		}
	}
}

func TestSyntheticRejectsBadTopology(t *testing.T) {
	if _, err := Synthetic(Config{Seed: 1}, 0, 10); err == nil {
		t.Fatal("0 layers must fail")
	}
	if _, err := Synthetic(Config{Seed: 1}, 1, 0); err == nil {
		t.Fatal("0 width must fail")
	}
}

func TestHelloWorldShape(t *testing.T) {
	app, err := HelloWorld(Config{Seed: 3, DurationMs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.Graph.Neurons != 126 {
		t.Fatalf("neurons = %d, want 117+9", app.Graph.Neurons)
	}
	// Output layer must be driven to fire.
	out := app.Graph.Groups[1]
	active := 0
	for i := out.Start; i < out.Start+out.N; i++ {
		if len(app.Graph.Spikes[i]) > 0 {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no output neuron fired")
	}
}

func TestImageSmoothingShapeAndSmoothing(t *testing.T) {
	app, err := ImageSmoothing(Config{Seed: 4, DurationMs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if app.Graph.Neurons != 2048 {
		t.Fatalf("neurons = %d, want 1024+1024", app.Graph.Neurons)
	}
	// Output rates must correlate with input rates (bright drives
	// bright) — check total activity present in both layers.
	inGrp, outGrp := app.Graph.Groups[0], app.Graph.Groups[1]
	inSpikes, outSpikes := 0, 0
	for i := inGrp.Start; i < inGrp.Start+inGrp.N; i++ {
		inSpikes += len(app.Graph.Spikes[i])
	}
	for i := outGrp.Start; i < outGrp.Start+outGrp.N; i++ {
		outSpikes += len(app.Graph.Spikes[i])
	}
	if inSpikes == 0 || outSpikes == 0 {
		t.Fatalf("activity in=%d out=%d", inSpikes, outSpikes)
	}
	if outSpikes >= inSpikes {
		t.Fatalf("smoothed output should fire less than input (threshold): in=%d out=%d", inSpikes, outSpikes)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	k := GaussianKernel(2, 1.0)
	if len(k) != 5 {
		t.Fatalf("kernel size = %d, want 5", len(k))
	}
	var sum float64
	for _, row := range k {
		for _, v := range row {
			sum += v
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("kernel sum = %f, want 1", sum)
	}
	if k[2][2] <= k[0][0] {
		t.Fatal("kernel must peak at center")
	}
}

func TestSyntheticImageRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	img := SyntheticImage(rng, 32)
	if len(img) != 1024 {
		t.Fatalf("image size = %d", len(img))
	}
	var min, max float64 = 1, 0
	for _, v := range img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %f outside [0,1]", v)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 0.3 {
		t.Fatal("image lacks contrast")
	}
}

func TestDigitBitmaps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for d := 0; d <= 9; d++ {
		img := SyntheticDigit(rng, d)
		if len(img) != 784 {
			t.Fatalf("digit %d size = %d", d, len(img))
		}
		on := 0
		for _, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("digit %d pixel %f outside [0,1]", d, v)
			}
			if v > 0.2 {
				on++
			}
		}
		if on < 20 || on > 400 {
			t.Fatalf("digit %d has %d lit pixels, implausible", d, on)
		}
	}
}

func TestDigitRecognitionTopology(t *testing.T) {
	app, err := DigitRecognition(Config{Seed: 7, DurationMs: 500})
	if err != nil {
		t.Fatal(err)
	}
	g := app.Graph
	if g.Neurons != 784+250+250 {
		t.Fatalf("neurons = %d, want 1284", g.Neurons)
	}
	// Input -> exc full (196000) + exc->inh (250) + inh->exc (250*249).
	want := 784*250 + 250 + 250*249
	if len(g.Synapses) != want {
		t.Fatalf("synapses = %d, want %d", len(g.Synapses), want)
	}
	// Excitatory neurons must fire (the network is driven).
	excGrp := g.Groups[1]
	total := 0
	for i := excGrp.Start; i < excGrp.Start+excGrp.N; i++ {
		total += len(g.Spikes[i])
	}
	if total == 0 {
		t.Fatal("excitatory layer silent")
	}
}

func TestSyntheticECGBeats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const bpm = 72.0
	const dur = 20000
	ecg := SyntheticECG(rng, bpm, dur, 0.02)
	if len(ecg) != dur {
		t.Fatalf("samples = %d", len(ecg))
	}
	// Count R peaks by threshold crossing at 0.6.
	peaks := 0
	above := false
	for _, v := range ecg {
		if v > 0.6 && !above {
			peaks++
			above = true
		} else if v < 0.3 {
			above = false
		}
	}
	want := int(bpm * dur / 60000.0)
	if peaks < want-2 || peaks > want+2 {
		t.Fatalf("R peaks = %d, want ≈%d", peaks, want)
	}
	if SyntheticECG(rng, 0, 100, 0) != nil {
		t.Fatal("non-positive BPM must yield nil")
	}
}

func TestLevelCrossingReconstruction(t *testing.T) {
	// A monotone ramp produces only UP spikes; count ≈ range/delta.
	ramp := make([]float64, 1000)
	for i := range ramp {
		ramp[i] = float64(i) * 0.01
	}
	up, down := LevelCrossing(ramp, 0.1)
	if len(down) != 0 {
		t.Fatalf("ramp produced %d DOWN spikes", len(down))
	}
	// Total rise 10.0 over delta 0.1 -> ~100 crossings; spikes capped at
	// 1/ms but the ramp rises 0.01/ms so roughly one spike per 10 ms.
	if len(up) < 90 || len(up) > 110 {
		t.Fatalf("UP spikes = %d, want ≈100", len(up))
	}
	if err := up.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelCrossingEmptyAndBadDelta(t *testing.T) {
	if up, down := LevelCrossing(nil, 0.1); up != nil || down != nil {
		t.Fatal("empty signal must yield nil trains")
	}
	if up, _ := LevelCrossing([]float64{1, 2}, 0); up != nil {
		t.Fatal("non-positive delta must yield nil")
	}
}

func TestHeartbeatBuildAndEstimate(t *testing.T) {
	res, err := Heartbeat(HeartbeatConfig{Config: Config{Seed: 9, DurationMs: 15000}, BPM: 75})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.App.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.App.Graph.Neurons != 2+64+16 {
		t.Fatalf("neurons = %d, want 82", res.App.Graph.Neurons)
	}
	if len(res.Up) == 0 || len(res.Down) == 0 {
		t.Fatal("encoder produced no spikes")
	}
	// The liquid must respond to the beats.
	liquidTotal := 0
	for _, tr := range res.LiquidSpikes {
		liquidTotal += len(tr)
	}
	if liquidTotal == 0 {
		t.Fatal("liquid silent")
	}
	// BPM estimation from the encoder UP channel must be close to truth
	// (beats form bursts of UP spikes at the R slope).
	est := EstimateBPM(res.Up, 15000, 150, 4)
	if est < res.TrueBPM*0.75 || est > res.TrueBPM*1.25 {
		t.Fatalf("estimated BPM = %.1f, want within 25%% of %.1f", est, res.TrueBPM)
	}
}

func TestEstimateBPMKnownBursts(t *testing.T) {
	// 5 bursts over 4 seconds -> 75 BPM.
	var tr spike.Train
	for b := int64(0); b < 5; b++ {
		start := b * 800
		tr = append(tr, start, start+5, start+10)
	}
	got := EstimateBPM(tr, 4000, 200, 1)
	if got != 75 {
		t.Fatalf("EstimateBPM = %f, want 75", got)
	}
	// With a 4-spike minimum the 3-spike bursts are rejected.
	if got := EstimateBPM(tr, 4000, 200, 4); got != 0 {
		t.Fatalf("EstimateBPM with minBurst=4 = %f, want 0", got)
	}
	if EstimateBPM(nil, 1000, 200, 1) != 0 {
		t.Fatal("empty train must estimate 0")
	}
}

func TestMergeAll(t *testing.T) {
	merged := MergeAll([]spike.Train{{5, 9}, {1}, {7}})
	want := spike.Train{1, 5, 7, 9}
	if len(merged) != 4 {
		t.Fatalf("merged = %v", merged)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("merged = %v, want %v", merged, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range RealisticNames() {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			t.Fatalf("nil builder for %s", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestAppsDeterministic(t *testing.T) {
	a1, err := HelloWorld(Config{Seed: 11, DurationMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := HelloWorld(Config{Seed: 11, DurationMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Graph.TotalSpikes() != a2.Graph.TotalSpikes() {
		t.Fatal("same seed must reproduce identical apps")
	}
	a3, err := HelloWorld(Config{Seed: 12, DurationMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Graph.TotalSpikes() == a3.Graph.TotalSpikes() {
		t.Log("warning: different seeds coincidentally equal (not fatal)")
	}
}

func TestCanonicalSpec(t *testing.T) {
	cases := []struct{ in, want string }{
		{"HW", "HW"},
		{"hello_world", "HW"},
		{"heartbeat_estimation", "HE"},
		{"synth", "synth"},
		{"synth:", "synth"}, // empty tail builds exactly like the bare name
		{"synth:width=100,layers=3", "synth:layers=3,width=100"},
		{"synth:layers=3,width=100", "synth:layers=3,width=100"},
		// The gen: families register from internal/genapp's init, which
		// this test binary does not link; the root package pins their
		// canonicalization (TestJobSpecAppCanonicalization).
		{"no-such-app", "no-such-app"},
		{"synth:not-a-param", "synth:not-a-param"},
	}
	for _, c := range cases {
		if got := CanonicalSpec(c.in); got != c.want {
			t.Errorf("CanonicalSpec(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

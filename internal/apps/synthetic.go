package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/snn"
	"repro/internal/spike"
)

// Synthetic builds one of the paper's synthetic SNN topologies (§V-A):
// `layers` fully connected feedforward layers of `width` neurons each,
// whose first layer receives input from 10 neurons creating spike trains
// with Poisson inter-spike intervals at mean rates between 10 and 100 Hz.
//
// Synapse counts match the paper exactly: 1×200 has 10·200 = 2 000
// synapses, 4×200 has 10·200 + 3·200² = 122 000.
func Synthetic(cfg Config, layers, width int) (*App, error) {
	cfg = cfg.withDefaults()
	if layers < 1 || width < 1 {
		return nil, fmt.Errorf("apps: synthetic topology %dx%d invalid", layers, width)
	}
	const inputs = 10

	rng := rand.New(rand.NewSource(cfg.Seed))
	net := snn.New(rng.Int63())
	in := net.CreateSpikeSource("input", inputs)

	prev := in
	prevWidth := inputs
	for l := 0; l < layers; l++ {
		layer := net.CreateGroup(fmt.Sprintf("layer%d", l), width, snn.Excitatory)
		// Scale weights with fan-in so every layer sustains activity.
		w := 60.0 / float64(prevWidth)
		if _, err := net.ConnectFull(prev, layer, w, 1); err != nil {
			return nil, err
		}
		prev = layer
		prevWidth = width
	}

	sim, err := snn.NewSim(net)
	if err != nil {
		return nil, err
	}
	// Mean firing rates between 10 and 100 Hz (paper §V-A).
	rates := make([]float64, inputs)
	for i := range rates {
		rates[i] = 10 + rng.Float64()*90
	}
	if err := sim.SetSpikeTrains(in, spike.PoissonRates(rng, rates, cfg.DurationMs)); err != nil {
		return nil, err
	}
	if err := sim.Run(cfg.DurationMs); err != nil {
		return nil, err
	}
	g, err := sim.Graph()
	if err != nil {
		return nil, err
	}
	return &App{
		Name:        fmt.Sprintf("synth_%dx%d", layers, width),
		Description: fmt.Sprintf("Synthetic fully connected feedforward, %d layers × %d neurons, 10 Poisson inputs (10–100 Hz), rate coding", layers, width),
		Graph:       g,
	}, nil
}

// SyntheticBuilder adapts Synthetic to the Builder shape for a fixed
// topology.
func SyntheticBuilder(layers, width int) Builder {
	return func(cfg Config) (*App, error) { return Synthetic(cfg, layers, width) }
}

// Package engine is the concurrent experiment engine underneath every
// sweep in this reproduction. The paper's evaluation (Fig. 5, Table II,
// Fig. 6–7 and the ablations) is a grid of independent mapping runs —
// applications × architectures × partitioning techniques — and related
// work (Balaji et al. 2019, Balaji & Das 2020) frames mapping as a
// compilation pipeline of independent, schedulable stages. The engine
// makes that structure explicit: a sweep is a slice of jobs executed on a
// bounded worker pool, with results returned in deterministic job order
// and per-job error capture instead of fail-fast.
//
// Determinism contract: the engine never reorders results — Sweep's
// result slice is indexed exactly like its job slice — so any job
// function that is itself deterministic for a fixed seed produces
// bit-identical sweeps at every worker count.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config bounds a sweep's concurrency.
type Config struct {
	// Workers is the worker-pool size. 0 (or negative) selects
	// runtime.GOMAXPROCS(0); 1 executes jobs strictly sequentially in
	// job order.
	Workers int
	// Timeout bounds each job's wall clock; 0 means no per-job limit.
	// A timed-out job yields a Result whose Err wraps
	// context.DeadlineExceeded; the remaining jobs still run.
	Timeout time.Duration
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Budget resolves the nested worker pools of a sweep-of-replays — the
// outer sweep pool and the inner per-replay worker count — against the
// machine so defaulted pools never oversubscribe it. Explicit (positive)
// values are honored as given: a caller setting both dimensions is
// stating a deliberate concurrency choice (e.g. a GOMAXPROCS matrix leg
// exercising scheduling variance), and the replay cores are bit-identical
// at every worker count, so honoring it is always safe — just possibly
// slower. A non-positive outer is derived from the headroom the inner
// pool leaves: GOMAXPROCS / inner, floored at 1. A non-positive inner
// resolves to 1 (sequential replay stays the default).
func Budget(outer, inner int) (int, int) {
	if inner < 1 {
		inner = 1
	}
	if outer <= 0 {
		outer = runtime.GOMAXPROCS(0) / inner
		if outer < 1 {
			outer = 1
		}
	}
	return outer, inner
}

// Result is the outcome of one job: its index in the job slice, the
// value produced, the error captured (nil on success), and the job's
// wall clock split into pool queue-wait and run time.
type Result[R any] struct {
	Index int
	Value R
	Err   error
	// Wait is how long the job sat in the sweep's dispatch queue before
	// a worker picked it up — the pool-contention component of latency,
	// distinct from the job's own run time below.
	Wait time.Duration
	// Elapsed is the job's wall clock once running (including a
	// timed-out job's time until abandonment).
	Elapsed time.Duration
}

// Sweep executes fn over every job on a bounded worker pool and returns
// the results in job order. Errors (including panics, which are
// recovered and converted) are captured per job rather than aborting the
// sweep; jobs never dispatched because ctx was cancelled report ctx's
// error. A nil ctx is treated as context.Background().
func Sweep[J, R any](ctx context.Context, cfg Config, jobs []J, fn func(context.Context, J) (R, error)) []Result[R] {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[R], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := cfg.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	sweepStart := time.Now()
	if workers == 1 {
		// Sequential fast path: strict job order on the calling
		// goroutine (runJob itself is also inline unless a timeout or
		// cancelable context requires an interruptible goroutine).
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				results[i] = Result[R]{Index: i, Err: fmt.Errorf("engine: job %d not started: %w", i, err)}
				continue
			}
			results[i] = runJob(ctx, cfg, sweepStart, i, jobs[i], fn)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(ctx, cfg, sweepStart, i, jobs[i], fn)
			}
		}()
	}
	dispatched := len(jobs)
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			dispatched = i
		}
		if dispatched != len(jobs) {
			break
		}
	}
	close(idx)
	wg.Wait()
	for i := dispatched; i < len(jobs); i++ {
		results[i] = Result[R]{Index: i, Err: fmt.Errorf("engine: job %d not started: %w", i, ctx.Err())}
	}
	return results
}

// runJob executes one job under the per-job timeout, converting panics
// to errors. Without a timeout (and with a non-cancelable context) the
// job runs inline on the calling worker — no extra goroutine. With one,
// the job runs on its own goroutine so it can be abandoned on deadline
// (the buffered channel lets it still finish and exit); job functions
// that honor their context stop promptly.
func runJob[J, R any](ctx context.Context, cfg Config, sweepStart time.Time, index int, job J, fn func(context.Context, J) (R, error)) Result[R] {
	start := time.Now()
	wait := start.Sub(sweepStart)
	jctx := ctx
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if jctx.Done() == nil {
		// Nothing can interrupt the job: run it inline.
		r := invoke(jctx, index, job, fn)
		r.Wait = wait
		r.Elapsed = time.Since(start)
		return r
	}
	done := make(chan Result[R], 1)
	go func() { done <- invoke(jctx, index, job, fn) }()
	select {
	case r := <-done:
		r.Wait = wait
		r.Elapsed = time.Since(start)
		return r
	case <-jctx.Done():
		return Result[R]{
			Index:   index,
			Err:     fmt.Errorf("engine: job %d: %w", index, jctx.Err()),
			Wait:    wait,
			Elapsed: time.Since(start),
		}
	}
}

// invoke calls fn, converting a panic into a captured error.
func invoke[J, R any](jctx context.Context, index int, job J, fn func(context.Context, J) (R, error)) (res Result[R]) {
	defer func() {
		if r := recover(); r != nil {
			res = Result[R]{Index: index, Err: fmt.Errorf("engine: job %d panicked: %v", index, r)}
		}
	}()
	v, err := fn(jctx, job)
	return Result[R]{Index: index, Value: v, Err: err}
}

// Values unwraps a result slice into its values, returning the first
// captured error verbatim if any job failed (job functions are expected
// to wrap their errors with job identity; engine-generated errors
// already carry the job index).
func Values[R any](results []Result[R]) ([]R, error) {
	out := make([]R, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Value
	}
	return out, nil
}

// FirstErr returns the first captured error of a sweep, or nil.
func FirstErr[R any](results []Result[R]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSweepPreservesJobOrder(t *testing.T) {
	jobs := make([]int, 64)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		results := Sweep(context.Background(), Config{Workers: workers}, jobs,
			func(_ context.Context, j int) (int, error) {
				// Stagger completion so later jobs often finish first.
				time.Sleep(time.Duration((64-j)%5) * time.Millisecond)
				return j * j, nil
			})
		vals, err := Values(results)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range vals {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("workers=%d: result %d carries index %d", workers, i, r.Index)
			}
		}
	}
}

func TestSweepCapturesErrorsWithoutAborting(t *testing.T) {
	wantErr := errors.New("boom")
	jobs := []int{0, 1, 2, 3, 4, 5}
	var ran atomic.Int64
	results := Sweep(context.Background(), Config{Workers: 3}, jobs,
		func(_ context.Context, j int) (int, error) {
			ran.Add(1)
			if j%2 == 1 {
				return 0, fmt.Errorf("job %d: %w", j, wantErr)
			}
			return j, nil
		})
	if got := ran.Load(); got != int64(len(jobs)) {
		t.Fatalf("only %d of %d jobs ran — sweep must not fail fast", got, len(jobs))
	}
	for i, r := range results {
		if i%2 == 1 {
			if !errors.Is(r.Err, wantErr) {
				t.Fatalf("job %d: error %v not captured", i, r.Err)
			}
		} else if r.Err != nil || r.Value != i {
			t.Fatalf("job %d: (%d, %v), want (%d, nil)", i, r.Value, r.Err, i)
		}
	}
	if _, err := Values(results); !errors.Is(err, wantErr) {
		t.Fatalf("Values error = %v", err)
	}
	if err := FirstErr(results); !errors.Is(err, wantErr) {
		t.Fatalf("FirstErr = %v", err)
	}
}

func TestSweepRecoversPanics(t *testing.T) {
	results := Sweep(context.Background(), Config{Workers: 2}, []int{0, 1, 2},
		func(_ context.Context, j int) (int, error) {
			if j == 1 {
				panic("kaboom")
			}
			return j, nil
		})
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs affected: %v, %v", results[0].Err, results[2].Err)
	}
}

func TestSweepPerJobTimeout(t *testing.T) {
	results := Sweep(context.Background(), Config{Workers: 2, Timeout: 20 * time.Millisecond},
		[]int{0, 1},
		func(ctx context.Context, j int) (int, error) {
			if j == 0 {
				<-ctx.Done() // honor the deadline
				return 0, ctx.Err()
			}
			return j, nil
		})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job error = %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Value != 1 {
		t.Fatalf("sibling job affected: %+v", results[1])
	}
}

func TestSweepTimeoutAbandonsStuckJob(t *testing.T) {
	release := make(chan struct{})
	start := time.Now()
	results := Sweep(context.Background(), Config{Workers: 1, Timeout: 15 * time.Millisecond},
		[]int{0},
		func(_ context.Context, _ int) (int, error) {
			<-release // ignores its context entirely
			return 0, nil
		})
	close(release)
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v", results[0].Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sweep blocked on a stuck job for %v", elapsed)
	}
}

func TestSweepContextCancelSkipsRemainingJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]int, 32)
	var started atomic.Int64
	results := Sweep(ctx, Config{Workers: 2}, jobs,
		func(_ context.Context, _ int) (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return 0, nil
		})
	var skipped int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation did not skip any queued jobs")
	}
	if started.Load() == int64(len(jobs)) {
		t.Fatal("every job was dispatched despite cancellation")
	}
}

func TestSweepSequentialCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Sweep(ctx, Config{Workers: 1}, []int{0, 1},
		func(_ context.Context, j int) (int, error) { return j, nil })
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d ran under a cancelled context: %+v", i, r)
		}
	}
}

func TestSweepNilContextAndEmptyJobs(t *testing.T) {
	if got := Sweep(nil, Config{}, nil, func(_ context.Context, j int) (int, error) { return j, nil }); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
	results := Sweep(nil, Config{}, []int{7},
		func(_ context.Context, j int) (int, error) { return j, nil })
	if results[0].Err != nil || results[0].Value != 7 {
		t.Fatalf("nil-context sweep: %+v", results[0])
	}
	if results[0].Elapsed < 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestConfigWorkerDefaults(t *testing.T) {
	if (Config{}).workers() < 1 {
		t.Fatal("default workers < 1")
	}
	if (Config{Workers: -3}).workers() < 1 {
		t.Fatal("negative workers not defaulted")
	}
	if got := (Config{Workers: 5}).workers(); got != 5 {
		t.Fatalf("workers = %d, want 5", got)
	}
}

func TestBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	half := procs / 2
	if half < 1 {
		half = 1
	}
	cases := []struct {
		outer, inner         int
		wantOuter, wantInner int
	}{
		{0, 0, procs, 1},             // all defaults: full sweep pool, sequential replay
		{0, 1, procs, 1},             // explicit sequential replay
		{3, 4, 3, 4},                 // both explicit: honored even if oversubscribed
		{0, 2, half, 2},              // outer derived from replay headroom
		{0, 4 * procs, 1, 4 * procs}, // replay wider than the machine: outer floors at 1
		{-1, -1, procs, 1},           // negatives behave like defaults
		{1, 0, 1, 1},
	}
	for _, c := range cases {
		o, i := Budget(c.outer, c.inner)
		if o != c.wantOuter || i != c.wantInner {
			t.Errorf("Budget(%d, %d) = (%d, %d), want (%d, %d)",
				c.outer, c.inner, o, i, c.wantOuter, c.wantInner)
		}
	}
}

package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineHop is a 1D placement distance: |a-b| hops.
func lineHop(a, b int) (int, error) {
	if a > b {
		return a - b, nil
	}
	return b - a, nil
}

func TestPlaceCrossbarsPreservesFitness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 300)
	p, err := NewProblem(g, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)
	before := p.Cost(a)
	placed, err := PlaceCrossbars(p, a, lineHop)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(placed); got != before {
		t.Fatalf("placement changed fitness: %d -> %d", before, got)
	}
	if err := p.Validate(placed); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceCrossbarsReducesDistanceWeightedTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 500)
	p, err := NewProblem(g, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)

	weighted := func(x Assignment) int64 {
		m := p.TrafficMatrix(x)
		var total int64
		for i := range m {
			for j := range m[i] {
				d, _ := lineHop(i, j)
				total += m[i][j] * int64(d)
			}
		}
		return total
	}
	before := weighted(a)
	placed, err := PlaceCrossbars(p, a, lineHop)
	if err != nil {
		t.Fatal(err)
	}
	if after := weighted(placed); after > before {
		t.Fatalf("placement increased weighted traffic: %d -> %d", before, after)
	}
}

func TestPlaceCrossbarsIdentityUnderUniformDistance(t *testing.T) {
	// With uniform distances every permutation is equivalent; the
	// 2-opt must terminate and return a valid relabelling.
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 20, 100)
	p, err := NewProblem(g, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)
	placed, err := PlaceCrossbars(p, a, func(x, y int) (int, error) { return 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost(placed) != p.Cost(a) {
		t.Fatal("uniform placement changed fitness")
	}
}

func TestPlaceCrossbarsRejectsInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 10, 30)
	p, err := NewProblem(g, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	bad := make(Assignment, 10) // all on crossbar 0: 10 > Nc=6
	if _, err := PlaceCrossbars(p, bad, lineHop); err == nil {
		t.Fatal("infeasible input must be rejected")
	}
}

func TestPlaceCrossbarsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(200))
		c := 2 + rng.Intn(5)
		nc := (n+c-1)/c + 2
		p, err := NewProblem(g, c, nc)
		if err != nil {
			return true
		}
		a := randomFeasible(p, rng)
		placed, err := PlaceCrossbars(p, a, lineHop)
		if err != nil {
			return false
		}
		// Placement is a bijective relabelling: crossbar loads are a
		// permutation of the originals and fitness is invariant.
		if p.Cost(placed) != p.Cost(a) {
			return false
		}
		before := p.Loads(a)
		after := p.Loads(placed)
		used := make([]bool, c)
		for _, l := range after {
			found := false
			for i, b := range before {
				if !used[i] && b == l {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return p.Validate(placed) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceCrossbarsPropagatesHopError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 20, 120)
	p, err := NewProblem(g, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)
	wantErr := errors.New("broken topology")
	if _, err := PlaceCrossbars(p, a, func(x, y int) (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("hop error not propagated, got %v", err)
	}
}

package partition

import (
	"errors"
	"math/rand"
	"sort"
)

// Genetic is a genetic-algorithm partitioner, the second counterpart for
// the paper's §III comparison claim. Individuals are assignments;
// reproduction uses tournament selection, uniform crossover with capacity
// repair, and single-neuron relocation mutation.
type Genetic struct {
	// Population is the number of individuals (default 60).
	Population int
	// Generations is the number of evolution steps (default 100).
	Generations int
	// TournamentK is the tournament size for parent selection (default 3).
	TournamentK int
	// MutationRate is the per-neuron relocation probability (default 0.02).
	MutationRate float64
	// Elite is the number of top individuals copied unchanged (default 2).
	Elite int
	// Seed makes the run reproducible.
	Seed int64
}

// Name implements Partitioner.
func (Genetic) Name() string { return "GA" }

// Reseed implements Seeded.
func (g Genetic) Reseed(seed int64) Partitioner {
	g.Seed = seed
	return g
}

type individual struct {
	a    Assignment
	cost int64
}

// Partition implements Partitioner.
func (g Genetic) Partition(p *Problem) (Assignment, error) {
	n := p.Graph.Neurons
	if n == 0 {
		return Assignment{}, nil
	}
	pop := g.Population
	if pop <= 0 {
		pop = 60
	}
	gens := g.Generations
	if gens <= 0 {
		gens = 100
	}
	tk := g.TournamentK
	if tk <= 0 {
		tk = 3
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.02
	}
	elite := g.Elite
	if elite <= 0 {
		elite = 2
	}
	if elite > pop {
		elite = pop
	}

	rng := rand.New(rand.NewSource(g.Seed))
	people := make([]individual, pop)
	for i := range people {
		a := randomFeasible(p, rng)
		people[i] = individual{a: a, cost: p.Cost(a)}
	}
	byCost := func() {
		sort.SliceStable(people, func(x, y int) bool { return people[x].cost < people[y].cost })
	}
	byCost()

	pick := func() Assignment {
		best := rng.Intn(pop)
		for t := 1; t < tk; t++ {
			c := rng.Intn(pop)
			if people[c].cost < people[best].cost {
				best = c
			}
		}
		return people[best].a
	}

	next := make([]individual, pop)
	for gen := 0; gen < gens; gen++ {
		for e := 0; e < elite; e++ {
			next[e] = individual{a: people[e].a.Clone(), cost: people[e].cost}
		}
		for i := elite; i < pop; i++ {
			child := g.crossover(p, pick(), pick(), rng)
			g.mutate(p, child, mut, rng)
			next[i] = individual{a: child, cost: p.Cost(child)}
		}
		people, next = next, people
		byCost()
	}

	best := people[0]
	if err := p.Validate(best.a); err != nil {
		return nil, errors.New("partition: GA internal error: " + err.Error())
	}
	return best.a, nil
}

// crossover performs uniform crossover with on-the-fly capacity repair:
// each gene takes a parent's crossbar if it still has room, otherwise the
// other parent's, otherwise the least-loaded open crossbar.
func (g Genetic) crossover(p *Problem, a, b Assignment, rng *rand.Rand) Assignment {
	n := p.Graph.Neurons
	child := make(Assignment, n)
	loads := make([]int, p.Crossbars)
	for i := 0; i < n; i++ {
		first, second := a[i], b[i]
		if rng.Intn(2) == 0 {
			first, second = second, first
		}
		switch {
		case loads[first] < p.CrossbarSize:
			child[i] = first
		case loads[second] < p.CrossbarSize:
			child[i] = second
		default:
			least := -1
			for k := 0; k < p.Crossbars; k++ {
				if loads[k] < p.CrossbarSize && (least < 0 || loads[k] < loads[least]) {
					least = k
				}
			}
			child[i] = least
		}
		loads[child[i]]++
	}
	return child
}

// mutate relocates random neurons to random crossbars with spare capacity.
func (g Genetic) mutate(p *Problem, a Assignment, rate float64, rng *rand.Rand) {
	loads := p.Loads(a)
	for i := range a {
		if rng.Float64() >= rate {
			continue
		}
		k := rng.Intn(p.Crossbars)
		if k != a[i] && loads[k] < p.CrossbarSize {
			loads[a[i]]--
			a[i] = k
			loads[k]++
		}
	}
}

package partition

import "fmt"

// PlaceCrossbars optimizes the physical placement of logical crossbars on
// the interconnect: it permutes crossbar labels so that pairs exchanging
// heavy spike traffic sit topologically close (few link hops apart). The
// partitioning fitness F (paper Eq. 8) is invariant under this relabelling
// — placement is the complementary mapping stage, applied uniformly to
// every technique before interconnect simulation so comparisons stay fair.
//
// hop must return the link distance between two physical crossbar slots;
// a hop error aborts placement (distances are structural, so an error
// means the caller wired the wrong topology, not a recoverable state).
// The optimizer greedily applies label swaps (2-opt) until no swap reduces
// the distance-weighted traffic Σ traffic[k1][k2]·hop(place[k1], place[k2]).
// It returns a new assignment with relabelled crossbars.
func PlaceCrossbars(p *Problem, a Assignment, hop func(a, b int) (int, error)) (Assignment, error) {
	if err := p.Validate(a); err != nil {
		return nil, fmt.Errorf("partition: placement input: %w", err)
	}
	c := p.Crossbars
	traffic := p.TrafficMatrix(a)
	// Symmetrize: link energy is direction-independent.
	sym := make([][]int64, c)
	for i := range sym {
		sym[i] = make([]int64, c)
		for j := 0; j < c; j++ {
			sym[i][j] = traffic[i][j] + traffic[j][i]
		}
	}

	// Distances are queried O(C²) times per 2-opt pass; resolve them once
	// up front so hop errors surface immediately instead of mid-descent.
	dist := make([][]int64, c)
	for i := range dist {
		dist[i] = make([]int64, c)
		for j := 0; j < c; j++ {
			if i == j {
				continue
			}
			d, err := hop(i, j)
			if err != nil {
				return nil, fmt.Errorf("partition: placement hop(%d,%d): %w", i, j, err)
			}
			dist[i][j] = int64(d)
		}
	}

	// place[logical] = physical slot.
	place := make([]int, c)
	for k := range place {
		place[k] = k
	}

	objective := func() int64 {
		var total int64
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				if sym[i][j] != 0 {
					total += sym[i][j] * dist[place[i]][place[j]]
				}
			}
		}
		return total
	}

	cur := objective()
	for improved := true; improved; {
		improved = false
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				place[i], place[j] = place[j], place[i]
				if next := objective(); next < cur {
					cur = next
					improved = true
				} else {
					place[i], place[j] = place[j], place[i]
				}
			}
		}
	}

	out := make(Assignment, len(a))
	for n, k := range a {
		out[n] = place[k]
	}
	return out, nil
}

package partition

import (
	"context"
	"fmt"
)

// PlaceCrossbars optimizes the physical placement of logical crossbars on
// the interconnect: it permutes crossbar labels so that pairs exchanging
// heavy spike traffic sit topologically close (few link hops apart). The
// partitioning fitness F (paper Eq. 8) is invariant under this relabelling
// — placement is the complementary mapping stage, applied uniformly to
// every technique before interconnect simulation so comparisons stay fair.
//
// hop must return the link distance between two physical crossbar slots;
// a hop error aborts placement (distances are structural, so an error
// means the caller wired the wrong topology, not a recoverable state).
// The optimizer greedily applies label swaps (2-opt) until no swap reduces
// the distance-weighted traffic Σ traffic[k1][k2]·hop(place[k1], place[k2]).
// It returns a new assignment with relabelled crossbars.
//
// Swaps are delta-evaluated: trialing a swap walks only the two affected
// traffic rows, O(C) instead of re-summing the O(C²) objective, so a full
// 2-opt pass is O(C³). That lifts the ~32-crossbar ceiling the original
// O(C⁴)-per-pass descent imposed; the descent visits swaps in the same
// order and accepts exactly the same ones, so the result is bit-identical
// (see TestPlacementMatchesReference).
func PlaceCrossbars(p *Problem, a Assignment, hop func(a, b int) (int, error)) (Assignment, error) {
	return PlaceCrossbarsCtx(context.Background(), p, a, hop)
}

// PlaceCrossbarsCtx is PlaceCrossbars bounded by a context: cancellation
// is observed between 2-opt descent rows (each row is O(C²) work), so a
// server's per-request timeout aborts placement within one row instead
// of waiting out the whole descent. The accepted swaps — and therefore
// the returned assignment — are identical to PlaceCrossbars whenever the
// context does not fire.
func PlaceCrossbarsCtx(ctx context.Context, p *Problem, a Assignment, hop func(a, b int) (int, error)) (Assignment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(a); err != nil {
		return nil, fmt.Errorf("partition: placement input: %w", err)
	}
	c := p.Crossbars
	traffic := p.TrafficMatrix(a)
	// Symmetrize: link energy is direction-independent.
	sym := make([][]int64, c)
	for i := range sym {
		sym[i] = make([]int64, c)
		for j := 0; j < c; j++ {
			sym[i][j] = traffic[i][j] + traffic[j][i]
		}
	}

	// Distances are queried O(C) times per swap trial; resolve them once
	// up front so hop errors surface immediately instead of mid-descent.
	// hop is not assumed symmetric (it is for the built-in topologies, but
	// the contract only requires consistency), so both directions are kept.
	dist := make([][]int64, c)
	for i := range dist {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("partition: placement canceled resolving distances: %w", err)
		}
		dist[i] = make([]int64, c)
		for j := 0; j < c; j++ {
			if i == j {
				continue
			}
			d, err := hop(i, j)
			if err != nil {
				return nil, fmt.Errorf("partition: placement hop(%d,%d): %w", i, j, err)
			}
			dist[i][j] = int64(d)
		}
	}

	// place[logical] = physical slot.
	place := make([]int, c)
	for k := range place {
		place[k] = k
	}

	// The objective sums ordered pairs i<j as sym[i][j]·dist[place[i]][place[j]].
	// swapDelta returns the exact objective change of swapping the slots
	// of logical crossbars i < j, walking only the terms that involve i or
	// j. Index order inside each term matches the objective, so the delta
	// is exact (not an approximation relying on dist symmetry) and a swap
	// improves iff delta < 0 — the same acceptance decision the full
	// re-evaluation makes, bit for bit.
	swapDelta := func(i, j int) int64 {
		pi, pj := place[i], place[j]
		delta := sym[i][j] * (dist[pj][pi] - dist[pi][pj])
		for k := 0; k < c; k++ {
			if k == i || k == j {
				continue
			}
			pk := place[k]
			if s := sym[i][k]; s != 0 {
				if i < k {
					delta += s * (dist[pj][pk] - dist[pi][pk])
				} else {
					delta += s * (dist[pk][pj] - dist[pk][pi])
				}
			}
			if s := sym[j][k]; s != 0 {
				if j < k {
					delta += s * (dist[pi][pk] - dist[pj][pk])
				} else {
					delta += s * (dist[pk][pi] - dist[pk][pj])
				}
			}
		}
		return delta
	}

	for improved := true; improved; {
		improved = false
		for i := 0; i < c; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("partition: placement canceled mid-descent: %w", err)
			}
			for j := i + 1; j < c; j++ {
				if swapDelta(i, j) < 0 {
					place[i], place[j] = place[j], place[i]
					improved = true
				}
			}
		}
	}

	out := make(Assignment, len(a))
	for n, k := range a {
		out[n] = place[k]
	}
	return out, nil
}

package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRemapAssignmentValidation(t *testing.T) {
	g := chainGraph(2, 2, 1)
	p, err := NewProblem(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RemapAssignment(p, Assignment{0, 0, 1}, nil, 0); err == nil {
		t.Fatal("short prev must fail")
	}
	if _, err := RemapAssignment(p, Assignment{0, 0, 0, 1}, nil, 0); err == nil {
		t.Fatal("infeasible prev must fail")
	}
	if _, err := RemapAssignment(p, Assignment{0, 0, 1, 1}, []int{9}, 0); err == nil {
		t.Fatal("out-of-range touched neuron must fail")
	}
}

// TestRemapAssignmentImproves pins the cost bound: remapping never leaves
// the assignment worse than prev on the (new) problem, always feasible,
// and never mutates prev.
func TestRemapAssignmentImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(60)
		g := randomGraph(rng, n, 5*n)
		c := 3 + rng.Intn(4)
		size := (n+c-1)/c + 2 + rng.Intn(3)
		p, err := NewProblem(g, c, size)
		if err != nil {
			t.Fatal(err)
		}
		prev := randomAssignment(rng, p)
		keep := prev.Clone()
		touched := make([]int, 0, n/4)
		for i := 0; i < n/4; i++ {
			touched = append(touched, rng.Intn(n))
		}
		a, err := RemapAssignment(p, prev, touched, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(prev, keep) {
			t.Fatalf("trial %d: prev mutated", trial)
		}
		if err := p.Validate(a); err != nil {
			t.Fatalf("trial %d: infeasible remap: %v", trial, err)
		}
		if got, was := p.Cost(a), p.Cost(prev); got > was {
			t.Fatalf("trial %d: remap cost %d worse than prev %d", trial, got, was)
		}
	}
}

// TestRemapAssignmentDeterministic pins byte-identical output for
// identical inputs (the worklist is processed in sorted order).
func TestRemapAssignmentDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 50, 250)
	p, err := NewProblem(g, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	prev := randomAssignment(rng, p)
	touched := []int{3, 8, 8, 21, 40, 3}
	a, err := RemapAssignment(p, prev, touched, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RemapAssignment(p, prev, touched, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RemapAssignment is not deterministic")
	}
}

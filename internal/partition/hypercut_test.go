package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomAssignment draws a feasible assignment uniformly by shuffling a
// balanced slot list.
func randomAssignment(rng *rand.Rand, p *Problem) Assignment {
	slots := make([]int, 0, p.Crossbars*p.CrossbarSize)
	for k := 0; k < p.Crossbars; k++ {
		for s := 0; s < p.CrossbarSize; s++ {
			slots = append(slots, k)
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return Assignment(slots[:p.Graph.Neurons])
}

func TestReferenceHyperCutKnownValues(t *testing.T) {
	// 2 layers × 2 neurons, layer-0 neurons fire 3 spikes and fan out to
	// both layer-1 neurons.
	g := chainGraph(2, 2, 3)
	p, err := NewProblem(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Split by layer: each layer-0 edge spans its own crossbar plus the
	// one holding both targets → λ=2, cut = 2 edges × 3 spikes × 1.
	if got := referenceHyperCut(p, Assignment{0, 0, 1, 1}); got != 6 {
		t.Fatalf("layer split cut = %d, want 6", got)
	}
	// Everything local: λ=1 for every edge.
	p2, err := NewProblem(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := referenceHyperCut(p2, Assignment{0, 0, 0, 0}); got != 0 {
		t.Fatalf("local cut = %d, want 0", got)
	}
	// Split one target off: layer-0 edges span {own, 0, 1} minus overlap.
	// Neuron 0,1 on crossbar 0, targets 2 on 0 and 3 on 1: each source
	// edge pins {0, 0, 1} → λ=2 → cut = 3+3 = 6.
	if got := referenceHyperCut(p2, Assignment{0, 0, 0, 1}); got != 6 {
		t.Fatalf("single split cut = %d, want 6", got)
	}
}

// TestHyperStateMatchesOracle is the bit-exactness contract of the
// tentpole: on random graphs (with self-loops and duplicate synapses) and
// random feasible assignments, every delta-evaluated move must equal the
// preserved full-recompute oracle, both as a predicted delta and as the
// running cut after the move is applied.
func TestHyperStateMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(40)
		g := randomGraph(rng, n, 4*n)
		c := 2 + rng.Intn(5)
		size := (n + c - 1) / c
		size += 1 + rng.Intn(3) // slack so moves are feasible
		p, err := NewProblem(g, c, size)
		if err != nil {
			t.Fatal(err)
		}
		a := randomAssignment(rng, p)
		s, err := NewHyperState(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Cut(), referenceHyperCut(p, a); got != want {
			t.Fatalf("trial %d: initial cut %d, oracle %d", trial, got, want)
		}
		cur := a.Clone()
		for move := 0; move < 60; move++ {
			i := rng.Intn(n)
			dst := rng.Intn(c)
			before := referenceHyperCut(p, cur)
			after := cur.Clone()
			after[i] = dst
			wantDelta := referenceHyperCut(p, after) - before
			if got := s.MoveDelta(i, dst); got != wantDelta {
				t.Fatalf("trial %d move %d: neuron %d→%d delta %d, oracle %d", trial, move, i, dst, got, wantDelta)
			}
			s.Move(i, dst)
			cur = after
			if got, want := s.Cut(), referenceHyperCut(p, cur); got != want {
				t.Fatalf("trial %d move %d: running cut %d, oracle %d", trial, move, got, want)
			}
		}
		if got := s.Assignment(); !reflect.DeepEqual(got, cur) {
			t.Fatalf("trial %d: state assignment diverged", trial)
		}
	}
}

func TestHyperStateValidation(t *testing.T) {
	g := chainGraph(2, 2, 1)
	p, err := NewProblem(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHyperState(p, Assignment{0, 0, 1}); err == nil {
		t.Fatal("short assignment must fail")
	}
	if _, err := NewHyperState(p, Assignment{0, 0, 1, 7}); err == nil {
		t.Fatal("out-of-range assignment must fail")
	}
}

func TestHyperCutPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 240)
	p, err := NewProblem(g, 4, 18)
	if err != nil {
		t.Fatal(err)
	}
	a, err := HyperCut{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(a); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	// Deterministic: repeated solves are identical.
	b, err := HyperCut{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("HyperCut is not deterministic")
	}
	// The FM refinement must not lose ground on the connectivity cut
	// against its own greedy seed.
	seed, err := Greedy{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, was := referenceHyperCut(p, a), referenceHyperCut(p, seed); got > was {
		t.Fatalf("refined cut %d worse than greedy seed %d", got, was)
	}
}

// Package partition implements the paper's primary contribution: the
// partitioning of a trained SNN into local synapses (mapped inside
// crossbars) and global synapses (mapped on the time-multiplexed
// interconnect), minimizing the number of spikes on the interconnect
// (paper §III, Eq. 1–8).
//
// The core algorithm is an instantiation of binary particle swarm
// optimization (PSO). The package also provides the two baselines the paper
// compares against — PACMAN (hierarchical population filling, SpiNNaker's
// mapper) and NEUTRAMS (traffic-oblivious balanced mapping) — plus
// additional optimizers (greedy, Kernighan–Lin refinement, simulated
// annealing, genetic algorithm) used for the ablation studies.
package partition

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Assignment maps every neuron to a crossbar index in [0, C). It is the
// binarized PSO position: assignment[i] = k means x̂_{i,k} = 1 (paper Eq. 3
// under constraint Eq. 4).
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Problem is one partitioning instance: a spike graph to distribute over C
// crossbars of capacity Nc (paper §III).
type Problem struct {
	Graph *graph.SpikeGraph
	// Crossbars is C, the number of crossbars.
	Crossbars int
	// CrossbarSize is Nc, the maximum neurons per crossbar (Eq. 5).
	CrossbarSize int

	counts []int64    // spikes per neuron
	csr    *graph.CSR // out-adjacency
	inCSR  inAdj      // in-adjacency with traffic weights, for deltas
}

// inAdj is a CSR of incoming synapses: for neuron j, the pre neurons and
// their spike counts.
type inAdj struct {
	start []int32
	pre   []int32
	w     []int64 // spike count of pre
}

// NewProblem validates the instance and precomputes adjacency structures.
func NewProblem(g *graph.SpikeGraph, crossbars, crossbarSize int) (*Problem, error) {
	if g == nil {
		return nil, errors.New("partition: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if crossbars < 1 {
		return nil, fmt.Errorf("partition: %d crossbars", crossbars)
	}
	if crossbarSize < 1 {
		return nil, fmt.Errorf("partition: crossbar size %d", crossbarSize)
	}
	if g.Neurons > crossbars*crossbarSize {
		return nil, fmt.Errorf("partition: %d neurons exceed capacity %d×%d", g.Neurons, crossbars, crossbarSize)
	}
	p := &Problem{
		Graph:        g,
		Crossbars:    crossbars,
		CrossbarSize: crossbarSize,
		counts:       g.SpikeCounts(),
		csr:          g.CSR(),
	}
	// Build the in-adjacency.
	n := g.Neurons
	start := make([]int32, n+1)
	for _, s := range g.Synapses {
		start[s.Post+1]++
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	pre := make([]int32, len(g.Synapses))
	w := make([]int64, len(g.Synapses))
	cursor := make([]int32, n)
	copy(cursor, start[:n])
	for _, s := range g.Synapses {
		k := cursor[s.Post]
		cursor[s.Post]++
		pre[k] = s.Pre
		w[k] = p.counts[s.Pre]
	}
	p.inCSR = inAdj{start: start, pre: pre, w: w}
	return p, nil
}

// Validate checks the PSO constraints (paper Eq. 4–5): every neuron is
// assigned to exactly one crossbar in range, and no crossbar exceeds Nc
// neurons.
func (p *Problem) Validate(a Assignment) error {
	if len(a) != p.Graph.Neurons {
		return fmt.Errorf("partition: assignment covers %d of %d neurons", len(a), p.Graph.Neurons)
	}
	loads := make([]int, p.Crossbars)
	for i, k := range a {
		if k < 0 || k >= p.Crossbars {
			return fmt.Errorf("partition: neuron %d assigned to crossbar %d outside [0,%d)", i, k, p.Crossbars)
		}
		loads[k]++
	}
	for k, l := range loads {
		if l > p.CrossbarSize {
			return fmt.Errorf("partition: crossbar %d holds %d neurons > Nc=%d", k, l, p.CrossbarSize)
		}
	}
	return nil
}

// Loads returns the number of neurons per crossbar.
func (p *Problem) Loads(a Assignment) []int {
	loads := make([]int, p.Crossbars)
	for _, k := range a {
		if k >= 0 && k < p.Crossbars {
			loads[k]++
		}
	}
	return loads
}

// Cost evaluates the PSO fitness F (paper Eq. 7–8): the total number of
// spikes communicated between distinct crossbars. Every synapse whose
// endpoints are on different crossbars contributes the spike count of its
// pre-synaptic neuron.
func (p *Problem) Cost(a Assignment) int64 {
	var total int64
	for i := 0; i < p.Graph.Neurons; i++ {
		ai := a[i]
		ci := p.counts[i]
		if ci == 0 {
			continue
		}
		for _, s := range p.csr.Out(i) {
			if a[s.Post] != ai {
				total += ci
			}
		}
	}
	return total
}

// CostDelta returns Cost(a with neuron moved to dst) − Cost(a) without
// mutating a. It runs in O(degree(neuron)).
func (p *Problem) CostDelta(a Assignment, neuron, dst int) int64 {
	src := a[neuron]
	if src == dst {
		return 0
	}
	var delta int64
	cn := p.counts[neuron]
	// Outgoing synapses: crossing state flips based on the post location.
	for _, s := range p.csr.Out(neuron) {
		post := int(s.Post)
		if post == neuron {
			continue
		}
		was := a[post] != src
		now := a[post] != dst
		if was != now {
			if now {
				delta += cn
			} else {
				delta -= cn
			}
		}
	}
	// Incoming synapses.
	for q := p.inCSR.start[neuron]; q < p.inCSR.start[neuron+1]; q++ {
		pre := int(p.inCSR.pre[q])
		if pre == neuron {
			continue
		}
		was := a[pre] != src
		now := a[pre] != dst
		if was != now {
			if now {
				delta += p.inCSR.w[q]
			} else {
				delta -= p.inCSR.w[q]
			}
		}
	}
	return delta
}

// SwapDelta returns the cost change of exchanging the crossbars of neurons
// i and j without mutating a. Swaps keep crossbar loads constant, which
// makes them the only available move when every crossbar is full.
func (p *Problem) SwapDelta(a Assignment, i, j int) int64 {
	ki, kj := a[i], a[j]
	if ki == kj || i == j {
		return 0
	}
	d1 := p.CostDelta(a, i, kj)
	a[i] = kj
	d2 := p.CostDelta(a, j, ki)
	a[i] = ki
	return d1 + d2
}

// TrafficMatrix returns spikes(k1, k2) for all crossbar pairs (paper
// Eq. 7): entry [k1][k2] is the number of spikes travelling from crossbar
// k1 to crossbar k2 over the interconnect. Diagonal entries are zero.
func (p *Problem) TrafficMatrix(a Assignment) [][]int64 {
	m := make([][]int64, p.Crossbars)
	for k := range m {
		m[k] = make([]int64, p.Crossbars)
	}
	for i := 0; i < p.Graph.Neurons; i++ {
		ai := a[i]
		ci := p.counts[i]
		if ci == 0 {
			continue
		}
		for _, s := range p.csr.Out(i) {
			if aj := a[s.Post]; aj != ai {
				m[ai][aj] += ci
			}
		}
	}
	return m
}

// GlobalSynapses returns the synapses mapped onto the interconnect under
// the assignment (pre and post on different crossbars); the complement is
// the set of local synapses.
func (p *Problem) GlobalSynapses(a Assignment) []graph.Synapse {
	var out []graph.Synapse
	for _, s := range p.Graph.Synapses {
		if a[s.Pre] != a[s.Post] {
			out = append(out, s)
		}
	}
	return out
}

// Partitioner produces a feasible assignment for a problem instance.
//
// The experiment engine runs techniques concurrently, so implementations
// must be safe for concurrent Partition calls on one receiver: keep all
// mutable optimization state local to the call (configuration read from
// the receiver is fine). Every partitioner in this package satisfies
// this.
type Partitioner interface {
	// Name identifies the technique in reports and benchmarks.
	Name() string
	// Partition solves the instance. Implementations must return an
	// assignment satisfying Problem.Validate.
	Partition(p *Problem) (Assignment, error)
}

// Seeded is implemented by stochastic partitioners whose search is driven
// by a seed. Reseed returns a copy of the technique configured with the
// given seed, leaving the receiver untouched — the hook seed sweeps
// (snnmap.Pipeline.RunSeeds) use to fan one configured technique out
// across independent searches. Deterministic techniques (PACMAN, NEUTRAMS,
// greedy, KL) intentionally do not implement it.
type Seeded interface {
	Partitioner
	Reseed(seed int64) Partitioner
}

// Result bundles an assignment with its fitness for reporting.
type Result struct {
	Technique string
	Assign    Assignment
	Cost      int64
}

// Solve runs a partitioner and validates + scores its output.
func Solve(pt Partitioner, p *Problem) (*Result, error) {
	a, err := pt.Partition(p)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", pt.Name(), err)
	}
	if err := p.Validate(a); err != nil {
		return nil, fmt.Errorf("partition: %s produced infeasible assignment: %w", pt.Name(), err)
	}
	return &Result{Technique: pt.Name(), Assign: a, Cost: p.Cost(a)}, nil
}

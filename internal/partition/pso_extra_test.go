package partition

import (
	"reflect"
	"testing"
)

func TestPSOLbestNeighborhood(t *testing.T) {
	g := chainGraph(3, 16, 5)
	p, err := NewProblem(g, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PSOConfig{SwarmSize: 24, Iterations: 30, Seed: 3, NeighborhoodK: 2}
	a, err := NewPSO(cfg).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(a); err != nil {
		t.Fatal(err)
	}
	// lbest must never be worse than the seeded baselines.
	neutrams, err := Solve(Neutrams{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost(a) > neutrams.Cost {
		t.Fatalf("lbest PSO (%d) worse than NEUTRAMS (%d)", p.Cost(a), neutrams.Cost)
	}
}

func TestPSOLbestDeterminism(t *testing.T) {
	g := chainGraph(2, 12, 3)
	p, err := NewProblem(g, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PSOConfig{SwarmSize: 16, Iterations: 20, Seed: 9, NeighborhoodK: 1}
	a1, err := NewPSO(cfg).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	a2, err := NewPSO(cfg).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("lbest PSO must be deterministic across worker counts")
	}
}

func TestPSOSeedingGuaranteesBaselineQuality(t *testing.T) {
	// With seeding on, the PSO result can never be worse than PACMAN,
	// Greedy or NEUTRAMS, even with a tiny budget.
	g := chainGraph(4, 20, 4)
	p, err := NewProblem(g, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	pso, err := Solve(NewPSO(PSOConfig{SwarmSize: 5, Iterations: 2, Seed: 1}), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []Partitioner{Pacman{}, Greedy{}, Neutrams{}} {
		res, err := Solve(base, p)
		if err != nil {
			t.Fatal(err)
		}
		if pso.Cost > res.Cost {
			t.Fatalf("seeded PSO (%d) worse than %s (%d)", pso.Cost, base.Name(), res.Cost)
		}
	}
}

func TestPSODisableSeedingStillFeasible(t *testing.T) {
	g := chainGraph(3, 10, 2)
	p, err := NewProblem(g, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPSO(PSOConfig{SwarmSize: 10, Iterations: 10, Seed: 4, DisableSeeding: true}).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(a); err != nil {
		t.Fatal(err)
	}
}

func TestPSOConfigDefaultsFilled(t *testing.T) {
	pso := NewPSO(PSOConfig{})
	def := DefaultPSOConfig()
	if pso.Cfg.SwarmSize != def.SwarmSize || pso.Cfg.Iterations != def.Iterations ||
		pso.Cfg.Phi1 != def.Phi1 || pso.Cfg.Phi2 != def.Phi2 ||
		pso.Cfg.Inertia != def.Inertia || pso.Cfg.VMax != def.VMax {
		t.Fatalf("defaults not filled: %+v", pso.Cfg)
	}
}

func TestPSOInvalidConfigRejected(t *testing.T) {
	g := chainGraph(2, 4, 1)
	p, err := NewProblem(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	bad := &PSO{Cfg: PSOConfig{SwarmSize: 0, Iterations: 10}}
	if _, err := bad.Partition(p); err == nil {
		t.Fatal("zero swarm must be rejected")
	}
	bad2 := &PSO{Cfg: PSOConfig{SwarmSize: 10, Iterations: 0}}
	if _, err := bad2.Partition(p); err == nil {
		t.Fatal("zero iterations must be rejected")
	}
}

func TestSwapDeltaMatchesFullRecompute(t *testing.T) {
	g := chainGraph(3, 8, 4)
	p, err := NewProblem(g, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := Assignment{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2}
	if err := p.Validate(a); err != nil {
		t.Fatal(err)
	}
	base := p.Cost(a)
	for i := 0; i < len(a); i += 3 {
		for j := 1; j < len(a); j += 5 {
			if a[i] == a[j] {
				continue
			}
			delta := p.SwapDelta(a, i, j)
			b := a.Clone()
			b[i], b[j] = b[j], b[i]
			if base+delta != p.Cost(b) {
				t.Fatalf("swap(%d,%d): delta %d but cost %d -> %d", i, j, delta, base, p.Cost(b))
			}
		}
	}
	// Swapping within the same crossbar or with itself is free.
	if p.SwapDelta(a, 0, 1) != 0 || p.SwapDelta(a, 5, 5) != 0 {
		t.Fatal("degenerate swaps must cost 0")
	}
}

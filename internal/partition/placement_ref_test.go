package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/noc"
)

// referencePlace preserves the original full-objective 2-opt descent —
// every swap trial re-sums the O(C²) objective — as the executable
// specification for the delta-evaluated PlaceCrossbars, which must visit
// and accept exactly the same swaps.
func referencePlace(p *Problem, a Assignment, hop func(a, b int) (int, error)) (Assignment, error) {
	if err := p.Validate(a); err != nil {
		return nil, fmt.Errorf("partition: placement input: %w", err)
	}
	c := p.Crossbars
	traffic := p.TrafficMatrix(a)
	sym := make([][]int64, c)
	for i := range sym {
		sym[i] = make([]int64, c)
		for j := 0; j < c; j++ {
			sym[i][j] = traffic[i][j] + traffic[j][i]
		}
	}

	dist := make([][]int64, c)
	for i := range dist {
		dist[i] = make([]int64, c)
		for j := 0; j < c; j++ {
			if i == j {
				continue
			}
			d, err := hop(i, j)
			if err != nil {
				return nil, fmt.Errorf("partition: placement hop(%d,%d): %w", i, j, err)
			}
			dist[i][j] = int64(d)
		}
	}

	place := make([]int, c)
	for k := range place {
		place[k] = k
	}

	objective := func() int64 {
		var total int64
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				if sym[i][j] != 0 {
					total += sym[i][j] * dist[place[i]][place[j]]
				}
			}
		}
		return total
	}

	cur := objective()
	for improved := true; improved; {
		improved = false
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				place[i], place[j] = place[j], place[i]
				if next := objective(); next < cur {
					cur = next
					improved = true
				} else {
					place[i], place[j] = place[j], place[i]
				}
			}
		}
	}

	out := make(Assignment, len(a))
	for n, k := range a {
		out[n] = place[k]
	}
	return out, nil
}

// asymHop is a deliberately asymmetric distance (hop(a,b) ≠ hop(b,a)) to
// pin that the delta evaluation does not silently assume symmetry.
func asymHop(a, b int) (int, error) {
	if a > b {
		return 2*(a-b) + 1, nil
	}
	return b - a, nil
}

// TestPlacementMatchesReference pins the delta-evaluated 2-opt to the
// preserved full-objective descent: identical output assignments across
// problem sizes, traffic shapes and hop metrics (1D line, mesh, tree, and
// an asymmetric metric).
func TestPlacementMatchesReference(t *testing.T) {
	hops := map[string]func(c int) (func(a, b int) (int, error), error){
		"line": func(int) (func(a, b int) (int, error), error) { return lineHop, nil },
		"asym": func(int) (func(a, b int) (int, error), error) { return asymHop, nil },
		"mesh": func(c int) (func(a, b int) (int, error), error) {
			sim, err := noc.NewSimulator(noc.DefaultConfig(noc.Mesh, c))
			if err != nil {
				return nil, err
			}
			return sim.HopDistance, nil
		},
		"tree": func(c int) (func(a, b int) (int, error), error) {
			sim, err := noc.NewSimulator(noc.DefaultConfig(noc.Tree, c))
			if err != nil {
				return nil, err
			}
			return sim.HopDistance, nil
		},
	}
	for _, tc := range []struct {
		crossbars, neurons, synapses int
		capacity                     int
		seed                         int64
	}{
		{4, 24, 120, 8, 1},
		{6, 40, 300, 8, 5},
		{9, 60, 500, 8, 9},
		{13, 90, 900, 8, 13},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		g := randomGraph(rng, tc.neurons, tc.synapses)
		p, err := NewProblem(g, tc.crossbars, tc.capacity)
		if err != nil {
			t.Fatal(err)
		}
		a := randomFeasible(p, rng)
		for name, build := range hops {
			t.Run(fmt.Sprintf("%s/C=%d", name, tc.crossbars), func(t *testing.T) {
				hop, err := build(tc.crossbars)
				if err != nil {
					t.Fatal(err)
				}
				want, err := referencePlace(p, a, hop)
				if err != nil {
					t.Fatal(err)
				}
				got, err := PlaceCrossbars(p, a, hop)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("delta-evaluated placement diverges from reference:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

package partition

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// PSOConfig parameterizes the binary particle swarm optimizer of paper
// §III. The search space has D = N·C dimensions x_{i,k} ∈ {0,1} indicating
// that neuron i is allocated to crossbar k; velocities are real-valued and
// binarized through a sigmoid (Eq. 2–3); position/velocity updates follow
// Eq. 1; constraints Eq. 4–5 are enforced by a capacity-aware sampling
// repair.
type PSOConfig struct {
	// SwarmSize is np, the number of particles. The paper settles on 1000
	// (Fig. 7); the default here is 100, which reaches the same optima on
	// the evaluated applications at a fraction of the wall clock.
	SwarmSize int
	// Iterations is the number of synchronous swarm updates (paper: 100).
	Iterations int
	// Phi1 weighs the particle's own experience Pbest (Eq. 1).
	Phi1 float64
	// Phi2 weighs the neighborhood experience Gbest (Eq. 1).
	Phi2 float64
	// Inertia scales the previous velocity. The paper's Eq. 1 uses 1.0;
	// values slightly below 1 damp oscillation.
	Inertia float64
	// VMax clamps velocity components to [-VMax, VMax], keeping the
	// sigmoid responsive (standard binary-PSO practice).
	VMax float64
	// Seed makes the optimization reproducible.
	Seed int64
	// Workers bounds the parallelism of fitness evaluation; 0 selects
	// GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives the best fitness after every
	// iteration (used by the swarm-size exploration of Fig. 7).
	Progress func(iteration int, best int64)
	// DisableSeeding turns off heuristic swarm seeding. By default three
	// particles start from the PACMAN, Greedy and NEUTRAMS solutions, so
	// the swarm never returns anything worse than the strongest known
	// heuristic; the remaining particles start at random feasible
	// positions.
	DisableSeeding bool
	// NeighborhoodK switches from global-best to ring-neighborhood
	// (lbest) PSO: each particle follows the best position among the K
	// particles on either side of it in a ring, matching the paper's
	// description of Gbest as "the experience of its neighbors". 0 keeps
	// the fully informed gbest swarm.
	NeighborhoodK int
}

// DefaultPSOConfig returns the reference configuration used throughout the
// experiments.
func DefaultPSOConfig() PSOConfig {
	return PSOConfig{
		SwarmSize:  100,
		Iterations: 100,
		Phi1:       2.0,
		Phi2:       2.0,
		Inertia:    0.9,
		VMax:       4.0,
		Seed:       1,
	}
}

// PSO is the paper's PSO-based partitioner.
type PSO struct {
	Cfg PSOConfig
}

// NewPSO returns a PSO partitioner with the given configuration, filling
// zero fields with defaults.
func NewPSO(cfg PSOConfig) *PSO {
	def := DefaultPSOConfig()
	if cfg.SwarmSize == 0 {
		cfg.SwarmSize = def.SwarmSize
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = def.Iterations
	}
	if cfg.Phi1 == 0 {
		cfg.Phi1 = def.Phi1
	}
	if cfg.Phi2 == 0 {
		cfg.Phi2 = def.Phi2
	}
	if cfg.Inertia == 0 {
		cfg.Inertia = def.Inertia
	}
	if cfg.VMax == 0 {
		cfg.VMax = def.VMax
	}
	return &PSO{Cfg: cfg}
}

// Name implements Partitioner.
func (*PSO) Name() string { return "PSO" }

// Reseed implements Seeded: it returns a PSO with the same configuration
// but a different seed.
func (o *PSO) Reseed(seed int64) Partitioner {
	cfg := o.Cfg
	cfg.Seed = seed
	return NewPSO(cfg)
}

// particle is one swarm member: a velocity matrix over (neuron, crossbar)
// dimensions, the current binarized position, and the particle's best.
type particle struct {
	vel         []float32 // N*C, row-major by neuron
	pos         Assignment
	cost        int64
	best        Assignment
	bestCost    int64
	rng         *rand.Rand
	loadScratch []int
	probScratch []float64
}

// Partition implements Partitioner.
func (o *PSO) Partition(p *Problem) (Assignment, error) {
	cfg := o.Cfg
	if cfg.SwarmSize < 1 {
		return nil, errors.New("partition: PSO swarm size < 1")
	}
	if cfg.Iterations < 1 {
		return nil, errors.New("partition: PSO iterations < 1")
	}
	n, c := p.Graph.Neurons, p.Crossbars
	if n == 0 {
		return Assignment{}, nil
	}
	if c == 1 {
		return make(Assignment, n), nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	var seeds []Assignment
	if !cfg.DisableSeeding {
		for _, h := range []Partitioner{Pacman{}, Greedy{}, Neutrams{}} {
			if a, err := h.Partition(p); err == nil && p.Validate(a) == nil {
				seeds = append(seeds, a)
			}
		}
	}
	swarm := make([]*particle, cfg.SwarmSize)
	for s := range swarm {
		pt := &particle{
			vel:         make([]float32, n*c),
			pos:         make(Assignment, n),
			rng:         rand.New(rand.NewSource(master.Int63())),
			loadScratch: make([]int, c),
			probScratch: make([]float64, c),
		}
		if s < len(seeds) {
			// Heuristic seed: adopt the baseline position exactly and
			// bias velocities toward it so the first repair keeps it
			// with high probability.
			copy(pt.pos, seeds[s])
			for i := 0; i < n; i++ {
				for k := 0; k < c; k++ {
					v := -cfg.VMax
					if seeds[s][i] == k {
						v = cfg.VMax
					}
					pt.vel[i*c+k] = float32(v)
				}
			}
		} else {
			for d := range pt.vel {
				pt.vel[d] = float32((pt.rng.Float64()*2 - 1) * cfg.VMax)
			}
			pt.repair(p)
		}
		pt.cost = p.Cost(pt.pos)
		pt.best = pt.pos.Clone()
		pt.bestCost = pt.cost
		swarm[s] = pt
	}

	gbest := swarm[0].best.Clone()
	gbestCost := swarm[0].bestCost
	for _, pt := range swarm[1:] {
		if pt.bestCost < gbestCost {
			gbestCost = pt.bestCost
			copy(gbest, pt.best)
		}
	}

	// neighborhoodBest returns the guide position for particle s: the
	// swarm-wide best (gbest PSO), or the best particle within the ring
	// neighborhood of radius K (lbest PSO).
	neighborhoodBest := func(s int) Assignment {
		if cfg.NeighborhoodK <= 0 {
			return gbest
		}
		np := len(swarm)
		best := swarm[s]
		for d := 1; d <= cfg.NeighborhoodK; d++ {
			for _, idx := range []int{(s + d) % np, (s - d + np) % np} {
				if swarm[idx].bestCost < best.bestCost {
					best = swarm[idx]
				}
			}
		}
		return best.best
	}

	type job struct {
		pt    *particle
		guide Assignment
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Snapshot guides before dispatching: workers mutate particle
		// bests concurrently, and lbest guides alias neighbours' bests.
		guides := make([]Assignment, len(swarm))
		for s := range swarm {
			if cfg.NeighborhoodK <= 0 {
				guides[s] = gbest
			} else {
				guides[s] = neighborhoodBest(s).Clone()
			}
		}

		var wg sync.WaitGroup
		work := make(chan job)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range work {
					j.pt.step(p, cfg, j.guide)
				}
			}()
		}
		for s, pt := range swarm {
			work <- job{pt: pt, guide: guides[s]}
		}
		close(work)
		wg.Wait()

		// Synchronous gbest update after the full swarm moved.
		for _, pt := range swarm {
			if pt.bestCost < gbestCost {
				gbestCost = pt.bestCost
				copy(gbest, pt.best)
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(iter, gbestCost)
		}
	}

	if err := p.Validate(gbest); err != nil {
		return nil, fmt.Errorf("partition: PSO internal error: %w", err)
	}
	return gbest, nil
}

// step performs one velocity update (Eq. 1), binarization (Eq. 2–3), and
// constraint repair (Eq. 4–5) for one particle, then re-evaluates fitness.
func (pt *particle) step(p *Problem, cfg PSOConfig, gbest Assignment) {
	n, c := p.Graph.Neurons, p.Crossbars
	vmax := float32(cfg.VMax)
	for i := 0; i < n; i++ {
		row := pt.vel[i*c : (i+1)*c]
		xi := pt.pos[i]
		pb := pt.best[i]
		gb := gbest[i]
		r1 := pt.rng.Float64()
		r2 := pt.rng.Float64()
		for k := range row {
			x, pbx, gbx := float64(0), float64(0), float64(0)
			if xi == k {
				x = 1
			}
			if pb == k {
				pbx = 1
			}
			if gb == k {
				gbx = 1
			}
			v := cfg.Inertia*float64(row[k]) + cfg.Phi1*r1*(pbx-x) + cfg.Phi2*r2*(gbx-x)
			if v > float64(vmax) {
				v = float64(vmax)
			} else if v < -float64(vmax) {
				v = -float64(vmax)
			}
			row[k] = float32(v)
		}
	}
	pt.repair(p)
	pt.cost = p.Cost(pt.pos)
	if pt.cost < pt.bestCost {
		pt.bestCost = pt.cost
		copy(pt.best, pt.pos)
	}
}

// repair binarizes the velocity matrix into a feasible assignment: each
// neuron samples a crossbar with probability proportional to
// sigmoid(v_{i,k}) (Eq. 2–3) restricted to crossbars with remaining
// capacity, guaranteeing Eq. 4 (one crossbar per neuron) and Eq. 5
// (≤ Nc neurons per crossbar).
func (pt *particle) repair(p *Problem) {
	n, c := p.Graph.Neurons, p.Crossbars
	loads := pt.loadScratch
	for k := range loads {
		loads[k] = 0
	}
	probs := pt.probScratch
	for i := 0; i < n; i++ {
		row := pt.vel[i*c : (i+1)*c]
		var sum float64
		for k := 0; k < c; k++ {
			if loads[k] >= p.CrossbarSize {
				probs[k] = 0
				continue
			}
			probs[k] = sigmoid(float64(row[k]))
			sum += probs[k]
		}
		var chosen int
		if sum <= 0 {
			// All open crossbars have vanishing probability; fall back
			// to the least loaded open crossbar.
			chosen = -1
			for k := 0; k < c; k++ {
				if loads[k] >= p.CrossbarSize {
					continue
				}
				if chosen < 0 || loads[k] < loads[chosen] {
					chosen = k
				}
			}
		} else {
			r := pt.rng.Float64() * sum
			chosen = -1
			for k := 0; k < c; k++ {
				if probs[k] <= 0 {
					continue
				}
				r -= probs[k]
				chosen = k
				if r <= 0 {
					break
				}
			}
		}
		pt.pos[i] = chosen
		loads[chosen]++
	}
}

func sigmoid(v float64) float64 {
	return 1.0 / (1.0 + math.Exp(-v))
}

package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/spike"
)

// chainGraph builds a feedforward chain of `layers` layers with `width`
// neurons each; every neuron connects to all neurons of the next layer.
// Layer 0 neurons fire `rate` spikes each.
func chainGraph(layers, width int, rate int) *graph.SpikeGraph {
	n := layers * width
	g := &graph.SpikeGraph{Neurons: n, Spikes: make([]spike.Train, n), DurationMs: 1000}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.Synapses = append(g.Synapses, graph.Synapse{
					Pre:    int32(l*width + i),
					Post:   int32((l+1)*width + j),
					Weight: 1, DelayMs: 1,
				})
			}
		}
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			tr := make(spike.Train, rate)
			for s := 0; s < rate; s++ {
				tr[s] = int64(s * 10)
			}
			g.Spikes[l*width+i] = tr
		}
	}
	for l := 0; l < layers; l++ {
		g.Groups = append(g.Groups, graph.Group{
			Name: "layer", Kind: "excitatory", Start: l * width, N: width,
		})
	}
	return g
}

// randomGraph builds a random graph for property tests.
func randomGraph(rng *rand.Rand, n, syn int) *graph.SpikeGraph {
	g := &graph.SpikeGraph{Neurons: n, Spikes: make([]spike.Train, n), DurationMs: 100}
	for i := 0; i < syn; i++ {
		g.Synapses = append(g.Synapses, graph.Synapse{
			Pre:    int32(rng.Intn(n)),
			Post:   int32(rng.Intn(n)),
			Weight: 1, DelayMs: 1,
		})
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(5)
		tr := make(spike.Train, c)
		for s := 0; s < c; s++ {
			tr[s] = int64(s)
		}
		g.Spikes[i] = tr
	}
	return g
}

func TestNewProblemValidation(t *testing.T) {
	g := chainGraph(2, 4, 3)
	if _, err := NewProblem(g, 0, 4); err == nil {
		t.Fatal("0 crossbars must fail")
	}
	if _, err := NewProblem(g, 2, 0); err == nil {
		t.Fatal("0 size must fail")
	}
	if _, err := NewProblem(g, 1, 4); err == nil {
		t.Fatal("insufficient capacity must fail")
	}
	if _, err := NewProblem(nil, 2, 4); err == nil {
		t.Fatal("nil graph must fail")
	}
	if _, err := NewProblem(g, 2, 4); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAssignment(t *testing.T) {
	g := chainGraph(2, 2, 1) // 4 neurons
	p, err := NewProblem(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(Assignment{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(Assignment{0, 0, 0, 1}); err == nil {
		t.Fatal("overloaded crossbar must fail")
	}
	if err := p.Validate(Assignment{0, 0, 1}); err == nil {
		t.Fatal("short assignment must fail")
	}
	if err := p.Validate(Assignment{0, 0, 1, 5}); err == nil {
		t.Fatal("out-of-range crossbar must fail")
	}
}

func TestCostKnownValues(t *testing.T) {
	// 2 layers × 2 neurons, each layer-0 neuron fires 3 spikes and has 2
	// outgoing synapses.
	g := chainGraph(2, 2, 3)
	p, err := NewProblem(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Layers split across crossbars: all 4 synapses cross, each carrying
	// 3 spikes = 12.
	if got := p.Cost(Assignment{0, 0, 1, 1}); got != 12 {
		t.Fatalf("split cost = %d, want 12", got)
	}
	// One neuron per layer on each crossbar: 2 of 4 synapses cross.
	if got := p.Cost(Assignment{0, 1, 0, 1}); got != 6 {
		t.Fatalf("interleaved cost = %d, want 6", got)
	}
	// Everything on one crossbar is infeasible here (Nc=2), but with a
	// larger crossbar cost must be 0.
	p2, err := NewProblem(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Cost(Assignment{0, 0, 0, 0}); got != 0 {
		t.Fatalf("single-crossbar cost = %d, want 0", got)
	}
}

func TestCostMatchesPaperSyntheticSynapseCounts(t *testing.T) {
	// Paper §V-A: topology mxn has 10 input neurons fully connected to
	// the first layer; 4x200 has 122000 synapses, 1x200 has 2000.
	build := func(m, n int) int {
		inputs := 10
		total := inputs*n + (m-1)*n*n
		return total
	}
	if got := build(1, 200); got != 2000 {
		t.Fatalf("1x200 synapses = %d, want 2000", got)
	}
	if got := build(4, 200); got != 122000 {
		t.Fatalf("4x200 synapses = %d, want 122000", got)
	}
}

func TestTrafficMatrixConsistentWithCost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 100)
	p, err := NewProblem(g, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)
	m := p.TrafficMatrix(a)
	var sum int64
	for k1 := range m {
		if m[k1][k1] != 0 {
			t.Fatal("diagonal traffic must be zero")
		}
		for k2 := range m[k1] {
			sum += m[k1][k2]
		}
	}
	if sum != p.Cost(a) {
		t.Fatalf("traffic matrix sum %d != cost %d", sum, p.Cost(a))
	}
}

func TestGlobalSynapsesComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 16, 60)
	p, err := NewProblem(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)
	global := p.GlobalSynapses(a)
	for _, s := range global {
		if a[s.Pre] == a[s.Post] {
			t.Fatal("global synapse does not cross crossbars")
		}
	}
	local := len(g.Synapses) - len(global)
	count := 0
	for _, s := range g.Synapses {
		if a[s.Pre] == a[s.Post] {
			count++
		}
	}
	if count != local {
		t.Fatalf("local count %d != complement %d", count, local)
	}
}

func TestCostDeltaMatchesFullRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(150))
		c := 2 + rng.Intn(4)
		nc := (n+c-1)/c + rng.Intn(4) + 1
		p, err := NewProblem(g, c, nc)
		if err != nil {
			return false
		}
		a := randomFeasible(p, rng)
		base := p.Cost(a)
		for trial := 0; trial < 10; trial++ {
			i := rng.Intn(n)
			k := rng.Intn(c)
			delta := p.CostDelta(a, i, k)
			b := a.Clone()
			b[i] = k
			if base+delta != p.Cost(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveValidatesOutput(t *testing.T) {
	g := chainGraph(2, 4, 2)
	p, err := NewProblem(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(Pacman{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != "PACMAN" || res.Cost != p.Cost(res.Assign) {
		t.Fatalf("result = %+v", res)
	}
}

package partition

import (
	"fmt"
	"sort"
)

// Greedy is a deterministic traffic-aware heuristic used as an ablation
// reference: neurons are placed in descending order of total incident
// traffic, each onto the open crossbar that minimizes the incremental cut
// cost against already-placed neighbors.
type Greedy struct{}

// Name implements Partitioner.
func (Greedy) Name() string { return "Greedy" }

// Partition implements Partitioner.
func (Greedy) Partition(p *Problem) (Assignment, error) {
	n := p.Graph.Neurons
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	loads := make([]int, p.Crossbars)

	// Total traffic incident to each neuron: outgoing spikes × fan-out
	// plus incoming traffic.
	weight := make([]int64, n)
	for i := 0; i < n; i++ {
		weight[i] += p.counts[i] * int64(len(p.csr.Out(i)))
		for q := p.inCSR.start[i]; q < p.inCSR.start[i+1]; q++ {
			weight[i] += p.inCSR.w[q]
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return weight[order[x]] > weight[order[y]] })

	for _, i := range order {
		bestK, bestGain := -1, int64(0)
		for k := 0; k < p.Crossbars; k++ {
			if loads[k] >= p.CrossbarSize {
				continue
			}
			// Affinity: traffic to/from already-placed neighbors on k.
			var gain int64
			for _, s := range p.csr.Out(i) {
				if a[s.Post] == k {
					gain += p.counts[i]
				}
			}
			for q := p.inCSR.start[i]; q < p.inCSR.start[i+1]; q++ {
				if a[p.inCSR.pre[q]] == k {
					gain += p.inCSR.w[q]
				}
			}
			// Prefer higher affinity; tie-break on lower load for balance.
			if bestK < 0 || gain > bestGain || (gain == bestGain && loads[k] < loads[bestK]) {
				bestK, bestGain = k, gain
			}
		}
		if bestK < 0 {
			return nil, fmt.Errorf("partition: greedy ran out of capacity at neuron %d", i)
		}
		a[i] = bestK
		loads[bestK]++
	}
	return a, nil
}

// KLRefine wraps another partitioner with a Kernighan–Lin-style pairwise
// improvement pass: repeatedly try the best single-neuron move or swap that
// reduces the cut, until a local optimum or MaxPasses is reached. Used in
// ablations to measure how far the PSO is from a strong local search.
type KLRefine struct {
	// Base produces the initial assignment.
	Base Partitioner
	// MaxPasses bounds the number of full improvement sweeps (default 8).
	MaxPasses int
}

// Name implements Partitioner.
func (k KLRefine) Name() string { return k.Base.Name() + "+KL" }

// Partition implements Partitioner.
func (k KLRefine) Partition(p *Problem) (Assignment, error) {
	a, err := k.Base.Partition(p)
	if err != nil {
		return nil, err
	}
	passes := k.MaxPasses
	if passes <= 0 {
		passes = 8
	}
	Refine(p, a, passes)
	return a, nil
}

// Refine greedily applies improving single-neuron moves (into crossbars
// with spare capacity) and improving swaps with synaptic neighbors (which
// work even at full capacity) until no change improves or maxPasses sweeps
// have run. The assignment is modified in place; the return value is the
// total cost reduction.
func Refine(p *Problem, a Assignment, maxPasses int) int64 {
	loads := p.Loads(a)
	var totalGain int64
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < p.Graph.Neurons; i++ {
			bestDelta := int64(0)
			bestK := -1
			for k := 0; k < p.Crossbars; k++ {
				if k == a[i] || loads[k] >= p.CrossbarSize {
					continue
				}
				if d := p.CostDelta(a, i, k); d < bestDelta {
					bestDelta, bestK = d, k
				}
			}
			if bestK >= 0 {
				loads[a[i]]--
				a[i] = bestK
				loads[bestK]++
				totalGain -= bestDelta
				improved = true
				continue
			}
			// No relocation improves: try swapping with synaptic
			// neighbors on other crossbars.
			bestJ := -1
			bestDelta = 0
			consider := func(j int) {
				if j == i || a[j] == a[i] {
					return
				}
				if d := p.SwapDelta(a, i, j); d < bestDelta {
					bestDelta, bestJ = d, j
				}
			}
			for _, s := range p.csr.Out(i) {
				consider(int(s.Post))
			}
			for q := p.inCSR.start[i]; q < p.inCSR.start[i+1]; q++ {
				consider(int(p.inCSR.pre[q]))
			}
			if bestJ >= 0 {
				a[i], a[bestJ] = a[bestJ], a[i]
				totalGain -= bestDelta
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return totalGain
}

package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// allPartitioners returns every technique for feasibility sweeps.
func allPartitioners() []Partitioner {
	return []Partitioner{
		NewPSO(PSOConfig{SwarmSize: 20, Iterations: 20, Seed: 1}),
		Pacman{},
		Neutrams{},
		Random{Seed: 1},
		Greedy{},
		KLRefine{Base: Pacman{}},
		Annealing{Seed: 1, Moves: 2000},
		Genetic{Seed: 1, Population: 20, Generations: 20},
	}
}

func TestAllPartitionersProduceFeasibleAssignments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(120))
		c := 2 + rng.Intn(4)
		nc := (n+c-1)/c + rng.Intn(3)
		p, err := NewProblem(g, c, nc)
		if err != nil {
			return true // infeasible instance generated; skip
		}
		for _, pt := range allPartitioners() {
			a, err := pt.Partition(p)
			if err != nil {
				return false
			}
			if err := p.Validate(a); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPSOBeatsNaiveBaselinesOnLayeredNet(t *testing.T) {
	// A layered feedforward net has an obvious good partition (layers
	// contiguous); NEUTRAMS round-robin destroys it. PSO must recover
	// something at least as good as PACMAN and far better than NEUTRAMS.
	g := chainGraph(4, 32, 10) // 128 neurons
	p, err := NewProblem(g, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	pso, err := Solve(NewPSO(PSOConfig{SwarmSize: 60, Iterations: 80, Seed: 7}), p)
	if err != nil {
		t.Fatal(err)
	}
	pacman, err := Solve(Pacman{}, p)
	if err != nil {
		t.Fatal(err)
	}
	neutrams, err := Solve(Neutrams{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if pso.Cost > pacman.Cost {
		t.Fatalf("PSO (%d) worse than PACMAN (%d)", pso.Cost, pacman.Cost)
	}
	if pso.Cost >= neutrams.Cost {
		t.Fatalf("PSO (%d) not better than NEUTRAMS (%d)", pso.Cost, neutrams.Cost)
	}
}

func TestPSOImprovesOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 60, 600)
	p, err := NewProblem(g, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Solve(Random{Seed: 3}, p)
	if err != nil {
		t.Fatal(err)
	}
	pso, err := Solve(NewPSO(PSOConfig{SwarmSize: 40, Iterations: 60, Seed: 3}), p)
	if err != nil {
		t.Fatal(err)
	}
	if pso.Cost >= random.Cost {
		t.Fatalf("PSO (%d) not better than random (%d)", pso.Cost, random.Cost)
	}
}

func TestPSODeterminism(t *testing.T) {
	g := chainGraph(3, 10, 4)
	p, err := NewProblem(g, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PSOConfig{SwarmSize: 30, Iterations: 30, Seed: 42}
	a1, err := NewPSO(cfg).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewPSO(cfg).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("PSO with same seed must be deterministic")
	}
	// Different parallelism must not change the result: the sequential
	// path and explicit multi-worker swarms are bit-identical because
	// every particle owns a seeded RNG and gbest updates synchronously.
	for _, workers := range []int{1, 2, 4, 16} {
		cfg.Workers = workers
		a3, err := NewPSO(cfg).Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1, a3) {
			t.Fatalf("PSO result changed at Workers=%d", workers)
		}
	}
}

func TestPSOSingleCrossbarShortcut(t *testing.T) {
	g := chainGraph(2, 4, 2)
	p, err := NewProblem(g, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPSO(PSOConfig{SwarmSize: 5, Iterations: 5, Seed: 1}).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range a {
		if k != 0 {
			t.Fatal("single crossbar must map everything to 0")
		}
	}
	if p.Cost(a) != 0 {
		t.Fatal("single-crossbar cost must be 0")
	}
}

func TestPSOMoreParticlesNotWorse(t *testing.T) {
	// Fig. 7 of the paper: larger swarms find equal or better optima for
	// a fixed iteration budget (on average; with fixed seeds we assert a
	// weak monotonicity between extreme sizes).
	g := chainGraph(3, 20, 5)
	p, err := NewProblem(g, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(swarm int) int64 {
		r, err := Solve(NewPSO(PSOConfig{SwarmSize: swarm, Iterations: 40, Seed: 5}), p)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cost
	}
	if small, large := cost(4), cost(80); large > small {
		t.Fatalf("80-particle swarm (%d) worse than 4-particle swarm (%d)", large, small)
	}
}

func TestPSOProgressCallback(t *testing.T) {
	g := chainGraph(2, 8, 3)
	p, err := NewProblem(g, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	var lastBest int64 = 1 << 62
	cfg := PSOConfig{SwarmSize: 10, Iterations: 15, Seed: 2,
		Progress: func(it int, best int64) {
			iters = append(iters, it)
			if best > lastBest {
				t.Fatal("gbest must be non-increasing")
			}
			lastBest = best
		}}
	if _, err := NewPSO(cfg).Partition(p); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 15 {
		t.Fatalf("progress called %d times, want 15", len(iters))
	}
}

func TestPacmanKeepsPopulationsContiguous(t *testing.T) {
	g := chainGraph(4, 8, 1) // 4 groups of 8
	p, err := NewProblem(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Pacman{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	// With Nc = group size, each layer must land on its own crossbar.
	for l := 0; l < 4; l++ {
		for i := 0; i < 8; i++ {
			if a[l*8+i] != l {
				t.Fatalf("neuron %d of layer %d on crossbar %d", i, l, a[l*8+i])
			}
		}
	}
}

func TestNeutramsBalancesLoad(t *testing.T) {
	g := chainGraph(3, 10, 1) // 30 neurons
	p, err := NewProblem(g, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Neutrams{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	loads := p.Loads(a)
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin load imbalance: %v", loads)
	}
}

func TestRefineNeverIncreasesCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(100))
		c := 2 + rng.Intn(3)
		nc := (n+c-1)/c + 2
		p, err := NewProblem(g, c, nc)
		if err != nil {
			return true
		}
		a := randomFeasible(p, rng)
		before := p.Cost(a)
		gain := Refine(p, a, 4)
		after := p.Cost(a)
		return after <= before && before-after == gain && p.Validate(a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKLRefineImprovesPacman(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 40, 400)
	p, err := NewProblem(g, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(Pacman{}, p)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Solve(KLRefine{Base: Pacman{}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cost > base.Cost {
		t.Fatalf("KL refinement made things worse: %d > %d", refined.Cost, base.Cost)
	}
}

func TestAnnealingAndGeneticBeatRandom(t *testing.T) {
	g := chainGraph(4, 16, 6)
	p, err := NewProblem(g, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Solve(Random{Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Solve(Annealing{Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := Solve(Genetic{Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Cost >= random.Cost {
		t.Fatalf("SA (%d) not better than random (%d)", sa.Cost, random.Cost)
	}
	if ga.Cost >= random.Cost {
		t.Fatalf("GA (%d) not better than random (%d)", ga.Cost, random.Cost)
	}
}

func TestGreedyRespectsCapacityUnderPressure(t *testing.T) {
	// Exactly full capacity: every crossbar must end at exactly Nc.
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 24, 200)
	p, err := NewProblem(g, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Greedy{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(a); err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Loads(a) {
		if l != 6 {
			t.Fatalf("loads = %v, want all 6", p.Loads(a))
		}
	}
}

func TestNeutramsInfeasibleRoundRobin(t *testing.T) {
	// 10 neurons, 4 crossbars of 2: round-robin needs ceil(10/4)=3 > 2.
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 10, 20)
	if _, err := NewProblem(g, 4, 2); err == nil {
		t.Fatal("instance should be infeasible overall (capacity 8 < 10)")
	}
	g2 := randomGraph(rng, 7, 10)
	p, err := NewProblem(g2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 7 over 4 crossbars round-robin: loads 2,2,2,1 — feasible.
	a, err := Neutrams{}.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(a); err != nil {
		t.Fatal(err)
	}
}

package partition

import (
	"fmt"
	"sort"
)

// RemapAssignment incrementally repairs a previous assignment after a
// workload perturbation, instead of re-solving from scratch: the touched
// neurons (those whose incident traffic the perturbation changed) seed a
// worklist, each is re-legalized by its best capacity-feasible move or
// neighbor swap under the *new* problem's cost, and every applied change
// re-queues its synaptic neighborhood until the worklist drains (or
// maxPasses rounds elapse, default 8). Work scales with the drifted
// region, not the problem, by two confinements: the worklist never
// leaves the touched set — an improving move outside it is general
// optimization slack the previous solve also left behind, not drift
// repair — and relocation candidates are only the crossbars hosting a
// synaptic neighbor (any other destination turns every incident edge
// into a crossing one, so its cost delta is ≥ 0 and can never strictly
// improve), keeping one repair step O(degree²) instead of
// O(crossbars × degree).
//
// The returned assignment is a fresh slice (prev is never mutated) and
// always satisfies Problem.Validate; its cost never exceeds prev's cost
// on the new problem (only strictly improving changes are applied). That
// it also tracks a from-scratch solve on realistic drifts is empirical,
// pinned by the property harness and the remap experiment's drift sweep.
func RemapAssignment(p *Problem, prev Assignment, touched []int, maxPasses int) (Assignment, error) {
	n := p.Graph.Neurons
	if len(prev) != n {
		return nil, fmt.Errorf("partition: remap of %d-neuron assignment onto %d-neuron problem", len(prev), n)
	}
	if err := p.Validate(prev); err != nil {
		return nil, fmt.Errorf("partition: remap from infeasible assignment: %w", err)
	}
	if maxPasses <= 0 {
		maxPasses = 8
	}
	a := prev.Clone()
	loads := p.Loads(a)

	region := make([]bool, n)
	queued := make([]bool, n)
	list := make([]int, 0, len(touched))
	for _, i := range touched {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("partition: remap touched neuron %d outside [0,%d)", i, n)
		}
		if !queued[i] {
			region[i] = true
			queued[i] = true
			list = append(list, i)
		}
	}

	// Scratch for the per-neuron relocation candidate set.
	onCand := make([]bool, p.Crossbars)
	cands := make([]int, 0, p.Crossbars)

	for pass := 0; pass < maxPasses && len(list) > 0; pass++ {
		sort.Ints(list) // deterministic processing order
		var next []int
		enqueue := func(j int) {
			if region[j] && !queued[j] {
				queued[j] = true
				next = append(next, j)
			}
		}
		for _, i := range list {
			queued[i] = false
		}
		for _, i := range list {
			// Best strictly-improving relocation into spare capacity.
			// Candidates: the crossbars hosting a synaptic neighbor, sorted
			// so ties resolve to the lowest crossbar exactly as a full scan
			// would (neighborless destinations have delta ≥ 0, never win).
			cands = cands[:0]
			addCand := func(j int) {
				if k := a[j]; j != i && !onCand[k] {
					onCand[k] = true
					cands = append(cands, k)
				}
			}
			for _, s := range p.csr.Out(i) {
				addCand(int(s.Post))
			}
			for q := p.inCSR.start[i]; q < p.inCSR.start[i+1]; q++ {
				addCand(int(p.inCSR.pre[q]))
			}
			sort.Ints(cands)
			bestDelta, bestK := int64(0), -1
			for _, k := range cands {
				onCand[k] = false
				if k == a[i] || loads[k] >= p.CrossbarSize {
					continue
				}
				if d := p.CostDelta(a, i, k); d < bestDelta {
					bestDelta, bestK = d, k
				}
			}
			if bestK >= 0 {
				loads[a[i]]--
				a[i] = bestK
				loads[bestK]++
				enqueue(i)
				for _, s := range p.csr.Out(i) {
					enqueue(int(s.Post))
				}
				for q := p.inCSR.start[i]; q < p.inCSR.start[i+1]; q++ {
					enqueue(int(p.inCSR.pre[q]))
				}
				continue
			}
			// No relocation improves (or capacity is tight): best
			// strictly-improving swap with a synaptic neighbor.
			bestJ := -1
			bestDelta = 0
			consider := func(j int) {
				if j == i || a[j] == a[i] {
					return
				}
				if d := p.SwapDelta(a, i, j); d < bestDelta {
					bestDelta, bestJ = d, j
				}
			}
			for _, s := range p.csr.Out(i) {
				consider(int(s.Post))
			}
			for q := p.inCSR.start[i]; q < p.inCSR.start[i+1]; q++ {
				consider(int(p.inCSR.pre[q]))
			}
			if bestJ >= 0 {
				a[i], a[bestJ] = a[bestJ], a[i]
				for _, moved := range [2]int{i, bestJ} {
					enqueue(moved)
					for _, s := range p.csr.Out(moved) {
						enqueue(int(s.Post))
					}
					for q := p.inCSR.start[moved]; q < p.inCSR.start[moved+1]; q++ {
						enqueue(int(p.inCSR.pre[q]))
					}
				}
			}
		}
		list = next
	}
	return a, nil
}

package partition

import (
	"fmt"
	"math/rand"
)

// Pacman is the PACMAN baseline (Galluppi et al., the SpiNNaker mapper)
// adapted for a crossbar architecture, as in the paper's evaluation (§V).
// PACMAN is a hierarchical configuration system: each population is split
// into fragments that fit a core, and every fragment is placed on its own
// core — SpiNNaker cores never host neurons of two populations. When the
// architecture has too few crossbars for population-exclusive placement,
// Pacman degrades to sequential contiguous filling (fragments share
// crossbars), still without modelling spike traffic.
type Pacman struct{}

// Name implements Partitioner.
func (Pacman) Name() string { return "PACMAN" }

// Partition implements Partitioner.
func (Pacman) Partition(p *Problem) (Assignment, error) {
	n := p.Graph.Neurons
	a := make(Assignment, n)

	// Population-exclusive placement when every neuron belongs to a
	// group and the fragment count fits the crossbar budget.
	covered := 0
	fragments := 0
	for _, grp := range p.Graph.Groups {
		covered += grp.N
		fragments += (grp.N + p.CrossbarSize - 1) / p.CrossbarSize
	}
	if covered == n && fragments <= p.Crossbars {
		k := 0
		for _, grp := range p.Graph.Groups {
			used := 0
			for i := grp.Start; i < grp.Start+grp.N; i++ {
				if used == p.CrossbarSize {
					k++
					used = 0
				}
				a[i] = k
				used++
			}
			if grp.N > 0 {
				k++ // fresh crossbar for the next population
			}
		}
		return a, nil
	}

	// Fallback: sequential contiguous fill in population order.
	k, used := 0, 0
	place := func(i int) error {
		if used == p.CrossbarSize {
			k++
			used = 0
		}
		if k >= p.Crossbars {
			return fmt.Errorf("partition: PACMAN ran out of crossbars at neuron %d", i)
		}
		a[i] = k
		used++
		return nil
	}
	seen := make([]bool, n)
	for _, grp := range p.Graph.Groups {
		for i := grp.Start; i < grp.Start+grp.N; i++ {
			if err := place(i); err != nil {
				return nil, err
			}
			seen[i] = true
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			if err := place(i); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// Neutrams is the NEUTRAMS baseline (Ji et al., MICRO 2016) as
// characterized by the paper: an ad-hoc mapping that uses a NoC simulator
// to evaluate energy "without solving the local and global synapse
// partitioning problem". Neurons are distributed round-robin, which
// balances crossbar load but ignores synapse locality and spike traffic.
type Neutrams struct{}

// Name implements Partitioner.
func (Neutrams) Name() string { return "NEUTRAMS" }

// Partition implements Partitioner.
func (Neutrams) Partition(p *Problem) (Assignment, error) {
	n := p.Graph.Neurons
	a := make(Assignment, n)
	// Round-robin over crossbars; capacity holds because ceil(n/C) <= Nc
	// whenever the instance is feasible and loads stay within ±1 of each
	// other.
	if (n+p.Crossbars-1)/p.Crossbars > p.CrossbarSize {
		return nil, fmt.Errorf("partition: NEUTRAMS round-robin overflows Nc=%d", p.CrossbarSize)
	}
	for i := 0; i < n; i++ {
		a[i] = i % p.Crossbars
	}
	return a, nil
}

// Random assigns neurons to crossbars uniformly at random subject to the
// capacity constraint. It serves as the floor reference in ablations.
type Random struct {
	// Seed makes the assignment reproducible.
	Seed int64
}

// Name implements Partitioner.
func (Random) Name() string { return "Random" }

// Reseed implements Seeded.
func (r Random) Reseed(seed int64) Partitioner {
	r.Seed = seed
	return r
}

// Partition implements Partitioner.
func (r Random) Partition(p *Problem) (Assignment, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	return randomFeasible(p, rng), nil
}

// randomFeasible draws a uniform feasible assignment: neurons in random
// order pick a uniformly random crossbar with remaining capacity.
func randomFeasible(p *Problem, rng *rand.Rand) Assignment {
	n := p.Graph.Neurons
	a := make(Assignment, n)
	loads := make([]int, p.Crossbars)
	open := make([]int, 0, p.Crossbars)
	perm := rng.Perm(n)
	for _, i := range perm {
		open = open[:0]
		for k := 0; k < p.Crossbars; k++ {
			if loads[k] < p.CrossbarSize {
				open = append(open, k)
			}
		}
		k := open[rng.Intn(len(open))]
		a[i] = k
		loads[k]++
	}
	return a
}

package partition

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func TestPlaceCrossbarsCtxCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 40, 300)
	p, err := NewProblem(g, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := randomFeasible(p, rng)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlaceCrossbarsCtx(ctx, p, a, lineHop); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled placement = %v, want context.Canceled", err)
	}

	// An unfired context changes nothing: the descent accepts the same
	// swaps as the context-free entry point.
	want, err := PlaceCrossbars(p, a, lineHop)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PlaceCrossbarsCtx(context.Background(), p, a, lineHop)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment diverged at neuron %d: %d vs %d", i, got[i], want[i])
		}
	}

	// A hop callback that cancels mid-precompute aborts the descent
	// before any swap work happens.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls := 0
	hop := func(x, y int) (int, error) {
		if calls++; calls == p.Crossbars { // after the first distance row
			cancel2()
		}
		return lineHop(x, y)
	}
	if _, err := PlaceCrossbarsCtx(ctx2, p, a, hop); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-precompute cancel = %v, want context.Canceled", err)
	}
}

package partition

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements the connectivity-cut hypergraph partitioner
// (registered as "hypercut"). Each presynaptic neuron's fan-out is one
// hyperedge spanning the neuron plus its post-synaptic targets
// (graph.Hypergraph); the objective is the connectivity cut
//
//	HyperCut(a) = Σ_e w_e · (λ_e(a) − 1)
//
// where λ_e is the number of distinct crossbars edge e's pins occupy and
// w_e the source's spike count. Because every pin set contains the source
// crossbar, λ_e − 1 is exactly the number of distinct *remote* destination
// crossbars, so the metric equals the per-crossbar AER injected packet
// count — the multicast traffic the NoC's word-level destination masks
// carry — rather than the pairwise per-synapse count of Eq. 7–8.
//
// The optimizer follows the PR 3 delta discipline: a full-recompute
// oracle (referenceHyperCut) is preserved verbatim, and the incremental
// pin-count state (HyperState) must stay bit-identical to it — pinned by
// the property harness for every move it evaluates or applies.

// referenceHyperCut is the preserved full-recompute oracle for the
// connectivity cut: O(pins) per call, no incremental state. The
// delta-evaluated HyperState is verified bit-identical against it;
// changes here invalidate that contract, so treat this function as
// frozen.
func referenceHyperCut(p *Problem, a Assignment) int64 {
	h := p.Graph.Hypergraph()
	stamp := make([]int, p.Crossbars)
	epoch := 0
	var cut int64
	for e := 0; e < h.Edges(); e++ {
		w := h.Weight[e]
		if w == 0 {
			continue
		}
		epoch++
		lambda := int64(0)
		for _, v := range h.PinsOf(e) {
			if k := a[v]; stamp[k] != epoch {
				stamp[k] = epoch
				lambda++
			}
		}
		cut += w * (lambda - 1)
	}
	return cut
}

// ReferenceHyperCut exposes the oracle to cross-package property
// harnesses. Production callers evaluate cuts through HyperState.
func ReferenceHyperCut(p *Problem, a Assignment) int64 {
	return referenceHyperCut(p, a)
}

// HyperState is the incremental connectivity-cut evaluator: it maintains
// per-hyperedge pin counts per crossbar so a single-neuron move is
// evaluated (MoveDelta) and applied (Move) in O(affected hyperedges) —
// the neuron's own fan-out edge plus one edge per distinct presynaptic
// neighbor — with deltas exactly equal to the oracle's full recompute.
// It owns a private copy of the assignment it was built from.
type HyperState struct {
	p *Problem
	h *graph.Hypergraph
	a Assignment

	pins   []int32 // [e*Crossbars + k]: pins of edge e on crossbar k
	lambda []int32 // distinct crossbars per edge
	cut    int64

	// Deduplicated in-adjacency: for neuron n, the distinct presynaptic
	// neighbors (excluding n itself) and the pin multiplicity n carries
	// in each neighbor's edge — all of a neuron's pins in one edge move
	// together, so deltas work per distinct edge, not per synapse.
	inStart []int32
	inPre   []int32
	inMult  []int32
	// ownPins[n] is n's pin multiplicity within its own edge: 1 (the
	// source pin) plus one per self-loop synapse.
	ownPins []int32
}

// NewHyperState builds the incremental state for an assignment. Zero-
// weight edges (silent sources) are excluded from the pin-count state —
// they cannot contribute to any cut or delta.
func NewHyperState(p *Problem, a Assignment) (*HyperState, error) {
	n := p.Graph.Neurons
	if len(a) != n {
		return nil, fmt.Errorf("partition: hyper state over %d of %d neurons", len(a), n)
	}
	for i, k := range a {
		if k < 0 || k >= p.Crossbars {
			return nil, fmt.Errorf("partition: hyper state: neuron %d on crossbar %d outside [0,%d)", i, k, p.Crossbars)
		}
	}
	h := p.Graph.Hypergraph()
	s := &HyperState{
		p:       p,
		h:       h,
		a:       a.Clone(),
		pins:    make([]int32, n*p.Crossbars),
		lambda:  make([]int32, n),
		ownPins: make([]int32, n),
		inStart: make([]int32, n+1),
	}

	// Dedup the in-adjacency: count distinct off-diagonal (pre, post)
	// pairs per post, then fill pres in ascending order with their
	// synapse multiplicities.
	csr := p.csr
	mark := make([]int32, n) // multiplicity scratch, keyed by post
	var touched []int32
	for i := 0; i < n; i++ {
		for _, syn := range csr.Out(i) {
			if int(syn.Post) == i {
				continue
			}
			if mark[syn.Post] == 0 {
				touched = append(touched, syn.Post)
			}
			mark[syn.Post]++
		}
		for _, j := range touched {
			s.inStart[j+1]++
			mark[j] = 0
		}
		touched = touched[:0]
	}
	for j := 1; j <= n; j++ {
		s.inStart[j] += s.inStart[j-1]
	}
	s.inPre = make([]int32, s.inStart[n])
	s.inMult = make([]int32, s.inStart[n])
	cursor := make([]int32, n)
	copy(cursor, s.inStart[:n])
	for i := 0; i < n; i++ {
		for _, syn := range csr.Out(i) {
			if int(syn.Post) == i {
				s.ownPins[i]++
				continue
			}
			if mark[syn.Post] == 0 {
				touched = append(touched, syn.Post)
			}
			mark[syn.Post]++
		}
		for _, j := range touched {
			q := cursor[j]
			cursor[j]++
			s.inPre[q] = int32(i)
			s.inMult[q] = mark[j]
			mark[j] = 0
		}
		touched = touched[:0]
		s.ownPins[i]++ // the source pin itself
	}

	// Seed pin counts, connectivities and the cut.
	for e := 0; e < n; e++ {
		w := h.Weight[e]
		if w == 0 {
			continue
		}
		base := e * p.Crossbars
		for _, v := range h.PinsOf(e) {
			k := s.a[v]
			if s.pins[base+int(k)] == 0 {
				s.lambda[e]++
			}
			s.pins[base+int(k)]++
		}
		s.cut += w * int64(s.lambda[e]-1)
	}
	return s, nil
}

// Cut returns the current connectivity cut — bit-identical to
// ReferenceHyperCut(p, s.Assignment()) at every point in a move sequence.
func (s *HyperState) Cut() int64 { return s.cut }

// Assignment returns a copy of the state's current assignment.
func (s *HyperState) Assignment() Assignment { return s.a.Clone() }

// MoveDelta returns Cut(a with neuron on dst) − Cut(a) without mutating
// the state, visiting only the hyperedges the neuron pins: its own
// fan-out edge plus one per distinct presynaptic neighbor.
func (s *HyperState) MoveDelta(neuron, dst int) int64 {
	src := s.a[neuron]
	if src == dst {
		return 0
	}
	C := s.p.Crossbars
	var delta int64
	// Moving all m of the neuron's pins in edge e raises λ_e when dst
	// held no pin and lowers it when the m pins were src's only ones.
	affected := func(e int, m int32) {
		w := s.h.Weight[e]
		if w == 0 || m == 0 {
			return
		}
		base := e * C
		if s.pins[base+dst] == 0 {
			delta += w
		}
		if s.pins[base+src] == m {
			delta -= w
		}
	}
	affected(neuron, s.ownPins[neuron])
	for q := s.inStart[neuron]; q < s.inStart[neuron+1]; q++ {
		affected(int(s.inPre[q]), s.inMult[q])
	}
	return delta
}

// Move applies a single-neuron move, updating pin counts, connectivities
// and the cut incrementally in O(affected hyperedges).
func (s *HyperState) Move(neuron, dst int) {
	src := s.a[neuron]
	if src == dst {
		return
	}
	C := s.p.Crossbars
	apply := func(e int, m int32) {
		w := s.h.Weight[e]
		if w == 0 || m == 0 {
			return
		}
		base := e * C
		if s.pins[base+dst] == 0 {
			s.lambda[e]++
			s.cut += w
		}
		s.pins[base+dst] += m
		s.pins[base+src] -= m
		if s.pins[base+src] == 0 {
			s.lambda[e]--
			s.cut -= w
		}
	}
	apply(neuron, s.ownPins[neuron])
	for q := s.inStart[neuron]; q < s.inStart[neuron+1]; q++ {
		apply(int(s.inPre[q]), s.inMult[q])
	}
	s.a[neuron] = dst
}

// HyperCut is the connectivity-cut FM/KL-style partitioner: a
// traffic-aware greedy seed (Greedy) followed by passes of best
// single-neuron moves under the capacity constraint, each evaluated in
// O(affected hyperedges) through HyperState. It is deterministic — no
// stochastic component, so like the other deterministic techniques it
// intentionally does not implement Seeded.
type HyperCut struct {
	// MaxPasses bounds the number of full improvement sweeps
	// (default 16); each pass stops early once no move improves.
	MaxPasses int
}

// Name implements Partitioner.
func (HyperCut) Name() string { return "HyperCut" }

// Partition implements Partitioner.
func (h HyperCut) Partition(p *Problem) (Assignment, error) {
	seed, err := Greedy{}.Partition(p)
	if err != nil {
		return nil, err
	}
	s, err := NewHyperState(p, seed)
	if err != nil {
		return nil, err
	}
	passes := h.MaxPasses
	if passes <= 0 {
		passes = 16
	}
	n := p.Graph.Neurons
	loads := p.Loads(s.a)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			bestK, bestDelta := -1, int64(0)
			for k := 0; k < p.Crossbars; k++ {
				if k == s.a[i] || loads[k] >= p.CrossbarSize {
					continue
				}
				// Strict improvement only, lowest crossbar on ties —
				// keeps the sweep deterministic and terminating.
				if d := s.MoveDelta(i, k); d < bestDelta {
					bestDelta, bestK = d, k
				}
			}
			if bestK >= 0 {
				loads[s.a[i]]--
				s.Move(i, bestK)
				loads[bestK]++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return s.a, nil
}

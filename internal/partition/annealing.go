package partition

import (
	"errors"
	"math"
	"math/rand"
)

// Annealing is a simulated-annealing partitioner, implemented as the
// counterpart for the paper's §III claim that PSO "is computationally less
// expensive with faster convergence compared to its counterparts such as
// genetic algorithm (GA) or simulated annealing (SA)". Moves are single
// neuron relocations subject to capacity; acceptance follows the
// Metropolis criterion under geometric cooling.
type Annealing struct {
	// Moves is the total number of proposed moves (default 200·N).
	Moves int
	// T0 is the initial temperature (default: 10% of the initial cost,
	// or 1 if the initial cost is 0).
	T0 float64
	// Alpha is the geometric cooling factor applied every N moves
	// (default 0.95).
	Alpha float64
	// Seed makes the run reproducible.
	Seed int64
}

// Name implements Partitioner.
func (Annealing) Name() string { return "SA" }

// Reseed implements Seeded.
func (s Annealing) Reseed(seed int64) Partitioner {
	s.Seed = seed
	return s
}

// Partition implements Partitioner.
func (s Annealing) Partition(p *Problem) (Assignment, error) {
	n := p.Graph.Neurons
	if n == 0 {
		return Assignment{}, nil
	}
	rng := rand.New(rand.NewSource(s.Seed))
	a := randomFeasible(p, rng)
	loads := p.Loads(a)
	cost := p.Cost(a)

	best := a.Clone()
	bestCost := cost

	moves := s.Moves
	if moves <= 0 {
		moves = 200 * n
	}
	alpha := s.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.95
	}
	temp := s.T0
	if temp <= 0 {
		temp = 0.1 * float64(cost)
		if temp <= 0 {
			temp = 1
		}
	}
	if p.Crossbars < 2 {
		return a, nil
	}

	for m := 0; m < moves; m++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			// Relocation move (changes loads).
			k := rng.Intn(p.Crossbars)
			if k != a[i] && loads[k] < p.CrossbarSize {
				delta := p.CostDelta(a, i, k)
				if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
					loads[a[i]]--
					a[i] = k
					loads[k]++
					cost += delta
				}
			}
		} else {
			// Swap move (load-preserving; essential when crossbars are
			// full and relocations are never feasible).
			j := rng.Intn(n)
			if a[i] != a[j] {
				delta := p.SwapDelta(a, i, j)
				if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
					a[i], a[j] = a[j], a[i]
					cost += delta
				}
			}
		}
		if cost < bestCost {
			bestCost = cost
			copy(best, a)
		}
		if m%n == n-1 {
			temp *= alpha
		}
	}
	if err := p.Validate(best); err != nil {
		return nil, errors.New("partition: SA internal error: " + err.Error())
	}
	return best, nil
}

package snnmap

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hardware"
	"repro/internal/partition"
)

// registry is a string-keyed, registration-ordered collection shared by
// the partitioner, architecture and experiment registries. Registration
// panics on duplicates (a wiring bug, caught at init), lookups are
// concurrency-safe.
type registry[T any] struct {
	mu    sync.RWMutex
	order []string
	items map[string]T
}

func (r *registry[T]) register(name string, item T) {
	if name == "" {
		panic("snnmap: registry entry with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.items == nil {
		r.items = map[string]T{}
	}
	if _, dup := r.items[name]; dup {
		panic(fmt.Sprintf("snnmap: duplicate registry entry %q", name))
	}
	r.items[name] = item
	r.order = append(r.order, name)
}

func (r *registry[T]) lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	item, ok := r.items[name]
	return item, ok
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// known renders the registry's keys for error messages, sorted for
// stable output.
func (r *registry[T]) known() string {
	names := r.names()
	sort.Strings(names)
	return fmt.Sprintf("%v", names)
}

// ---------------------------------------------------------------------------
// Partitioner registry

// PartitionerSpec carries the tunables a named partitioner factory may
// consume; factories ignore the fields that do not apply to their
// technique. Zero values select the package defaults (seed 1, the
// DefaultPSOConfig swarm shape).
type PartitionerSpec struct {
	// Seed drives the technique's stochastic components.
	Seed int64
	// SwarmSize and Iterations shape the PSO (and are reused as
	// population/generations by the GA factory).
	SwarmSize  int
	Iterations int
	// Workers bounds intra-technique parallelism (the PSO's swarm
	// evaluation pool).
	Workers int
}

func (s PartitionerSpec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// PartitionerFactory builds a configured partitioner from a spec.
type PartitionerFactory func(spec PartitionerSpec) (Partitioner, error)

var partitioners registry[PartitionerFactory]

// RegisterPartitioner adds a named partitioning technique. The name is
// the key both CLIs accept (-partitioner) and panics on duplicates.
func RegisterPartitioner(name string, f PartitionerFactory) {
	partitioners.register(name, f)
}

// NewPartitioner builds the named technique from the registry.
func NewPartitioner(name string, spec PartitionerSpec) (Partitioner, error) {
	f, ok := partitioners.lookup(name)
	if !ok {
		return nil, fmt.Errorf("snnmap: unknown partitioner %q (known: %s)", name, partitioners.known())
	}
	return f(spec)
}

// PartitionerNames lists the registered techniques in registration order.
func PartitionerNames() []string { return partitioners.names() }

// ---------------------------------------------------------------------------
// Architecture registry

// ArchSpec carries the overrides a named architecture factory applies on
// top of its application-sized default: explicit crossbar count/size and
// the AER packetization mode. Zero values keep the factory's sizing.
type ArchSpec struct {
	Crossbars    int
	CrossbarSize int
	AER          hardware.AERMode
}

// ArchFactory sizes a named architecture family for a spike graph.
type ArchFactory func(g *SpikeGraph, spec ArchSpec) (Arch, error)

var architectures registry[ArchFactory]

// RegisterArch adds a named architecture family. The name is the key
// both CLIs accept (-topology) and panics on duplicates.
func RegisterArch(name string, f ArchFactory) {
	architectures.register(name, f)
}

// NewArch sizes the named architecture family for the graph.
func NewArch(name string, g *SpikeGraph, spec ArchSpec) (Arch, error) {
	f, ok := architectures.lookup(name)
	if !ok {
		return Arch{}, fmt.Errorf("snnmap: unknown architecture %q (known: %s)", name, architectures.known())
	}
	return f(g, spec)
}

// ArchNames lists the registered architecture families in registration
// order.
func ArchNames() []string { return architectures.names() }

// defaultCrossbarSize reproduces the CLI's historical sizing: ~N/4 with
// 15% slack, so every technique has to distribute the network.
func defaultCrossbarSize(n int) int {
	nc := (n*115/100 + 3) / 4
	if nc < 1 {
		nc = 1
	}
	return nc
}

// ---------------------------------------------------------------------------
// Experiment registry

// PipelineFactory constructs the warm session an experiment holds for
// each (application, architecture) pair of its grid. Experiments receive
// the factory instead of calling NewPipeline directly so callers can
// inject cross-request caching or instrumented pipelines (the shape a
// mapping server needs).
type PipelineFactory func(app *App, arch Arch, opts ...Option) (*Pipeline, error)

// Experiment is one registered evaluation driver — a table or figure of
// the paper, or an ablation. Run executes the experiment's grid through
// pipelines obtained from the factory and returns the result as a
// serializable Table.
type Experiment interface {
	// Name is the registry key (`cmd/experiments -run` accepts it).
	Name() string
	// Describe is the one-line summary shown by -list.
	Describe() string
	// Run executes the experiment.
	Run(ctx context.Context, pipelines PipelineFactory, opts ExpOptions) (*Table, error)
}

var experimentsReg registry[Experiment]

// RegisterExperiment adds an experiment to the registry, panicking on a
// duplicate name.
func RegisterExperiment(e Experiment) {
	experimentsReg.register(e.Name(), e)
}

// LookupExperiment returns the named experiment.
func LookupExperiment(name string) (Experiment, error) {
	e, ok := experimentsReg.lookup(name)
	if !ok {
		return nil, fmt.Errorf("snnmap: unknown experiment %q (known: %s)", name, experimentsReg.known())
	}
	return e, nil
}

// ExperimentNames lists the registered experiments in registration order.
func ExperimentNames() []string { return experimentsReg.names() }

// Experiments returns the registered experiments in registration order.
func Experiments() []Experiment {
	names := experimentsReg.names()
	out := make([]Experiment, 0, len(names))
	for _, n := range names {
		e, _ := experimentsReg.lookup(n)
		out = append(out, e)
	}
	return out
}

// ---------------------------------------------------------------------------
// Built-in registrations

func init() {
	// Partitioners: the paper's PSO, its two baselines, and the ablation
	// optimizers. Names match the historical CLI flags.
	RegisterPartitioner("pso", func(spec PartitionerSpec) (Partitioner, error) {
		return NewPSO(PSOConfig{
			SwarmSize:  spec.SwarmSize,
			Iterations: spec.Iterations,
			Seed:       spec.seed(),
			Workers:    spec.Workers,
		}), nil
	})
	RegisterPartitioner("pacman", func(PartitionerSpec) (Partitioner, error) { return Pacman, nil })
	RegisterPartitioner("neutrams", func(PartitionerSpec) (Partitioner, error) { return Neutrams, nil })
	RegisterPartitioner("greedy", func(PartitionerSpec) (Partitioner, error) { return GreedyPartitioner, nil })
	RegisterPartitioner("kl", func(PartitionerSpec) (Partitioner, error) {
		return partition.KLRefine{Base: partition.Greedy{}}, nil
	})
	RegisterPartitioner("hypercut", func(PartitionerSpec) (Partitioner, error) {
		return partition.HyperCut{}, nil
	})
	RegisterPartitioner("sa", func(spec PartitionerSpec) (Partitioner, error) {
		return partition.Annealing{Seed: spec.seed()}, nil
	})
	RegisterPartitioner("ga", func(spec PartitionerSpec) (Partitioner, error) {
		return partition.Genetic{Seed: spec.seed(), Population: spec.SwarmSize, Generations: spec.Iterations}, nil
	})
	RegisterPartitioner("random", func(spec PartitionerSpec) (Partitioner, error) {
		return partition.Random{Seed: spec.seed()}, nil
	})

	// Architectures: the CLI's tree/mesh families sized from the app,
	// the paper's fixed CxQuad reference, and the two experiment-harness
	// shapes.
	RegisterArch("tree", func(g *SpikeGraph, spec ArchSpec) (Arch, error) {
		size := spec.CrossbarSize
		if size == 0 {
			size = defaultCrossbarSize(g.Neurons)
		}
		return applyArchSpec(hardware.ForNeurons(g.Neurons, size), spec), nil
	})
	RegisterArch("mesh", func(g *SpikeGraph, spec ArchSpec) (Arch, error) {
		size := spec.CrossbarSize
		if size == 0 {
			size = defaultCrossbarSize(g.Neurons)
		}
		c := (g.Neurons + size - 1) / size
		return applyArchSpec(hardware.MeshChip(c, size), spec), nil
	})
	RegisterArch("cxquad", func(_ *SpikeGraph, spec ArchSpec) (Arch, error) {
		return applyArchSpec(CxQuad(), spec), nil
	})
	RegisterArch("quad", func(g *SpikeGraph, spec ArchSpec) (Arch, error) {
		return applyArchSpec(QuadArch(g), spec), nil
	})
	RegisterArch("star", func(g *SpikeGraph, spec ArchSpec) (Arch, error) {
		return applyArchSpec(PacmanCapableArch(g), spec), nil
	})
}

// applyArchSpec applies the explicit overrides of a spec to a sized
// architecture.
func applyArchSpec(a Arch, spec ArchSpec) Arch {
	if spec.Crossbars > 0 {
		a.Crossbars = spec.Crossbars
	}
	if spec.CrossbarSize > 0 {
		a.CrossbarSize = spec.CrossbarSize
	}
	a.AER = spec.AER
	return a
}
